//! Transmission bug #1818 (1.42) — the bandwidth object's invariant is
//! destroyed by the main thread while a peer I/O thread still asserts it:
//! an order violation between destruction and use.

use gist_vm::{SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM: &str = r#"
; transmission 1.42 (miniature) — bandwidth object destroyed while in use.
global epilogue_ticks = 0
global bytes_moved = 0
global peers = 0

fn account(n) {
entry:
  b = load $bytes_moved           @ bandwidth.c:60
  b2 = add b, n                   @ bandwidth.c:61
  store $bytes_moved, b2          @ bandwidth.c:62
  ret                             @ bandwidth.c:63
}

fn peer_io(band) {
entry:
  i = const 0                     @ peer-io.c:410
  br head                        @ peer-io.c:411
head:
  magic = load band               @ peer-io.c:413
  ok = cmp eq magic, 1234         @ peer-io.c:414
  assert ok, "bandwidth magic"    @ peer-io.c:414
  la = gep band, 1                @ peer-io.c:416
  limit = load la                 @ peer-io.c:416
  call account(limit)             @ peer-io.c:417
  i = add i, 1                    @ peer-io.c:418
  more = cmp lt i, 2              @ peer-io.c:419
  condbr more, head, exit         @ peer-io.c:419
exit:
  ret                             @ peer-io.c:421
}

fn main() {
entry:
  band = alloc 2                  @ session.c:300
  store band, 1234                @ session.c:301
  la = gep band, 1                @ session.c:302
  store la, 100                   @ session.c:302
  p = load $peers                 @ session.c:305
  p2 = add p, 1                   @ session.c:305
  store $peers, p2                @ session.c:305
  t = spawn peer_io(band)         @ session.c:310
  k = const 0                     @ session.c:312
  br work                        @ session.c:313
work:
  p3 = load $peers                @ session.c:314
  p4 = add p3, 0                  @ session.c:314
  store $peers, p4                @ session.c:314
  k = add k, 1                    @ session.c:315
  moar = cmp lt k, 4              @ session.c:316
  condbr moar, work, teardown     @ session.c:316
teardown:
  store band, 0                   @ session.c:318
  join t                          @ session.c:320
  call epilogue_work()
  ret                             @ session.c:322
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Transmission #1818 bug spec.
pub fn transmission_1818() -> BugSpec {
    BugSpec {
        name: "transmission-1818",
        display: "Transmission bug #1818",
        software: "Transmission",
        version: "1.42",
        bug_id: "1818",
        class: BugClass::Concurrency,
        program: super::parse("transmission-1818", PROGRAM),
        make_config: config,
        ideal_lines: vec![("session.c", 318), ("peer-io.c", 413), ("peer-io.c", 414)],
        // Failing order: destruction store before the peer's magic read.
        ideal_order_lines: vec![("session.c", 318), ("peer-io.c", 413)],
        root_cause_lines: vec![("session.c", 318)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 59_977,
            slice_src: 680,
            slice_instrs: 1_681,
            ideal_src: 2,
            ideal_instrs: 7,
            gist_src: 3,
            gist_instrs: 8,
            recurrences: 3,
            time_s: 23,
            offline_s: 17,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::FailureKind;

    #[test]
    fn magic_assert_fires_when_destroyed_early() {
        let bug = transmission_1818();
        let (_, report) = bug.find_failure(200).expect("manifests");
        match &report.kind {
            FailureKind::AssertFail { msg } => assert!(msg.contains("magic")),
            k => panic!("expected assert failure, got {k:?}"),
        }
        let f = bug.program.function_by_name("peer_io").unwrap();
        assert_eq!(report.stack.first().map(|fr| fr.func), Some(f.id));
    }

    #[test]
    fn rate_is_schedule_dependent() {
        let bug = transmission_1818();
        let rate = bug.failure_rate(60);
        assert!(rate > 0.05 && rate < 0.95, "rate {rate}");
    }
}
