//! SQLite bug #1672 (3.3.3) — a race in the custom thread test harness:
//! the worker publishes its completion flag *before* writing the result,
//! so the main thread can observe `done == 1` and read a result that is
//! not there yet.

use gist_vm::{SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM: &str = r#"
; sqlite 3.3.3 (miniature) — test harness completion-flag race.
global epilogue_ticks = 0
global ops = 0
global pages_cached = 0

fn compute(n) {
entry:
  o = load $ops                  @ test4.c:120
  o2 = add o, 1                  @ test4.c:121
  store $ops, o2                 @ test4.c:122
  r = mul n, 2                   @ test4.c:123
  ret r                          @ test4.c:124
}

fn warm_cache() {
entry:
  i = const 0                    @ pager.c:50
  br head                       @ pager.c:51
head:
  c = load $pages_cached         @ pager.c:53
  c2 = add c, 1                  @ pager.c:53
  store $pages_cached, c2        @ pager.c:53
  i = add i, 1                   @ pager.c:54
  more = cmp lt i, 3             @ pager.c:55
  condbr more, head, exit        @ pager.c:55
exit:
  ret                            @ pager.c:57
}

fn worker(s) {
entry:
  r = call compute(21)           @ test4.c:210
  store s, 1                     @ test4.c:214
  ra = gep s, 1                  @ test4.c:216
  store ra, r                    @ test4.c:216
  ret                            @ test4.c:218
}

fn main() {
entry:
  call warm_cache()              @ test4.c:298
  s = alloc 2                    @ test4.c:300
  store s, 0                     @ test4.c:301
  ra = gep s, 1                  @ test4.c:302
  store ra, 0                    @ test4.c:302
  t = spawn worker(s)            @ test4.c:305
  br spin                       @ test4.c:306
spin:
  d = load s                     @ test4.c:308
  ready = cmp eq d, 1            @ test4.c:308
  condbr ready, readres, spin    @ test4.c:308
readres:
  r = load ra                    @ test4.c:311
  ok = cmp eq r, 42              @ test4.c:312
  assert ok, "thread result"     @ test4.c:312
  join t                         @ test4.c:314
  call epilogue_work()
  ret                            @ test4.c:316
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
        num_cores: 4,
        max_steps: 50_000,
        ..VmConfig::default()
    }
}

/// Builds the SQLite #1672 bug spec.
pub fn sqlite_1672() -> BugSpec {
    BugSpec {
        name: "sqlite-1672",
        display: "SQLite bug #1672",
        software: "SQLite",
        version: "3.3.3",
        bug_id: "1672",
        class: BugClass::Concurrency,
        program: super::parse("sqlite-1672", PROGRAM),
        make_config: config,
        // Matching the paper's tiny SQLite ideal sketch (3 source lines,
        // 4 instructions): the worker's late result store, the premature
        // result read, and the failing check.
        ideal_lines: vec![("test4.c", 216), ("test4.c", 311), ("test4.c", 312)],
        // Failing order: main reads the result *before* the worker's store.
        ideal_order_lines: vec![("test4.c", 311), ("test4.c", 216)],
        root_cause_lines: vec![("test4.c", 216), ("test4.c", 311)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 47_150,
            slice_src: 389,
            slice_instrs: 1_011,
            ideal_src: 3,
            ideal_instrs: 4,
            gist_src: 3,
            gist_instrs: 4,
            recurrences: 2,
            time_s: 167,
            offline_s: 103,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::FailureKind;

    #[test]
    fn early_flag_publish_fails_result_assert() {
        let bug = sqlite_1672();
        let (_, report) = bug.find_failure(200).expect("manifests");
        match &report.kind {
            FailureKind::AssertFail { msg } => assert!(msg.contains("result")),
            k => panic!("expected assert failure, got {k:?}"),
        }
        // The failure is observed by the main thread.
        assert_eq!(report.tid, 0);
    }

    #[test]
    fn correct_order_succeeds_often() {
        let bug = sqlite_1672();
        let rate = bug.failure_rate(60);
        assert!(rate > 0.02 && rate < 0.9, "rate {rate}");
    }
}
