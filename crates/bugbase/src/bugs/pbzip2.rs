//! Pbzip2 bug #1 — the paper's running example (Fig. 1).
//!
//! "main frees f->mut and sets it to NULL while the consumer thread may
//! still be using it"; in failing runs the store of NULL happens before
//! the consumer's use, and the consumer crashes unlocking a NULL mutex.
//! Pbzip2 developers fixed it by introducing proper synchronization —
//! four months after the report.

use gist_vm::{SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM: &str = r#"
; pbzip2 0.9.4 (miniature) — producer/consumer FIFO with premature cleanup.
global epilogue_ticks = 0
global blocks_done = 0
global verbosity = 0
global files_processed = 0

fn init_config() {
entry:
  v = const 1                   @ pbzip2.cpp:120
  store $verbosity, v           @ pbzip2.cpp:121
  ret v                         @ pbzip2.cpp:122
}

fn log_progress(n) {
entry:
  d = load $blocks_done         @ pbzip2.cpp:200
  d2 = add d, n                 @ pbzip2.cpp:201
  store $blocks_done, d2        @ pbzip2.cpp:202
  ret                           @ pbzip2.cpp:203
}

fn queue_init(size) {
entry:
  q = alloc 3                   @ pbzip2.cpp:431
  m = alloc 1                   @ pbzip2.cpp:432
  store q, m                    @ pbzip2.cpp:433
  ca = gep q, 1                 @ pbzip2.cpp:434
  store ca, size                @ pbzip2.cpp:434
  da = gep q, 2                 @ pbzip2.cpp:435
  store da, 0                   @ pbzip2.cpp:435
  ret q                         @ pbzip2.cpp:436
}

fn consumer(f) {
entry:
  m = load f                    @ pbzip2.cpp:888
  lock m                        @ pbzip2.cpp:889
  ca = gep f, 1                 @ pbzip2.cpp:890
  cnt = load ca                 @ pbzip2.cpp:890
  cnt2 = sub cnt, 1             @ pbzip2.cpp:891
  store ca, cnt2                @ pbzip2.cpp:891
  unlock m                      @ pbzip2.cpp:893
  call log_progress(1)          @ pbzip2.cpp:894
  ret                           @ pbzip2.cpp:897
}

fn main() {
entry:
  c = call init_config()        @ pbzip2.cpp:1001
  q = call queue_init(2)        @ pbzip2.cpp:1010
  t = spawn consumer(q)         @ pbzip2.cpp:1024
  fp = load $files_processed    @ pbzip2.cpp:1050
  fp2 = add fp, 1               @ pbzip2.cpp:1051
  store $files_processed, fp2   @ pbzip2.cpp:1052
  m2 = load q                   @ pbzip2.cpp:1093
  free m2                       @ pbzip2.cpp:1094
  store q, 0                    @ pbzip2.cpp:1095
  join t                        @ pbzip2.cpp:1098
  call epilogue_work()
  ret                           @ pbzip2.cpp:1100
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random {
            seed,
            preempt: 0.55,
        },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the pbzip2 #1 bug spec.
pub fn pbzip2_1() -> BugSpec {
    BugSpec {
        name: "pbzip2-1",
        display: "Pbzip2 bug #1",
        software: "Pbzip2",
        version: "0.9.4",
        bug_id: "N/A",
        class: BugClass::Concurrency,
        program: super::parse("pbzip2", PROGRAM),
        make_config: config,
        // Fig. 1's ideal sketch: the queue's creation (the statements with
        // data dependencies to f->mut), the spawn, main's free and NULL
        // store, and the consumer's mutex load and use.
        ideal_lines: vec![
            ("pbzip2.cpp", 431),
            ("pbzip2.cpp", 436),
            ("pbzip2.cpp", 1010),
            ("pbzip2.cpp", 1024),
            ("pbzip2.cpp", 1093),
            ("pbzip2.cpp", 1094),
            ("pbzip2.cpp", 1095),
            ("pbzip2.cpp", 888),
            ("pbzip2.cpp", 889),
        ],
        // In every failing schedule main's free of the mutex precedes the
        // consumer's crashing lock (the arrow of Fig. 1).
        ideal_order_lines: vec![("pbzip2.cpp", 1094), ("pbzip2.cpp", 889)],
        root_cause_lines: vec![("pbzip2.cpp", 1094), ("pbzip2.cpp", 1095)],
        // Fig. 1's failure flavor: the consumer crashes *locking* the mutex
        // main freed/NULLed. (The bug can also fire as a use-after-free at
        // the unlock when the free slips inside the critical section, but
        // that interleaving inverts the Fig. 1 arrow.)
        prefer_loc: Some(("pbzip2.cpp", 889)),
        paper: PaperNumbers {
            software_loc: 1_492,
            slice_src: 8,
            slice_instrs: 14,
            ideal_src: 6,
            ideal_instrs: 13,
            gist_src: 9,
            gist_instrs: 14,
            recurrences: 4,
            time_s: 72,
            offline_s: 3,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::{FailureKind, RunOutcome, Vm};

    #[test]
    fn crashes_with_segfault_or_uaf_in_consumer() {
        let bug = pbzip2_1();
        let (_, report) = bug.find_failure(200).expect("manifests");
        assert!(
            matches!(
                report.kind,
                FailureKind::SegFault { .. } | FailureKind::UseAfterFree { .. }
            ),
            "kind: {:?}",
            report.kind
        );
        // Crash is in the consumer (thread > 0).
        assert!(report.tid > 0, "crash must be in the consumer thread");
        let cons = bug.program.function_by_name("consumer").unwrap();
        assert_eq!(report.stack.first().map(|f| f.func), Some(cons.id));
    }

    #[test]
    fn successful_runs_consume_both_blocks() {
        let bug = pbzip2_1();
        let mut succeeded = false;
        for seed in 0..100 {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            if matches!(vm.run(&mut []).outcome, RunOutcome::Finished) {
                succeeded = true;
                break;
            }
        }
        assert!(succeeded);
    }

    #[test]
    fn ideal_sketch_matches_fig1_shape() {
        let bug = pbzip2_1();
        let ideal = bug.ideal_sketch();
        // Fig 1 ideally shows 9 statements in our line mapping.
        assert_eq!(ideal.stmts.len(), 9, "{:?}", ideal.stmts);
        assert_eq!(ideal.access_order.len(), 2);
    }
}
