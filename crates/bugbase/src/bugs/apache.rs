//! The four Apache httpd bugs of Table 1.
//!
//! * **#45605** (Apache-1, 2.2.9) — racy slot-index increment in the
//!   request table leaves a slot NULL; serving it dereferences NULL.
//! * **#25520** (Apache-2, 2.0.48) — `ap_buffered_log_writer` re-reads the
//!   shared buffer length without holding the lock; a stale check lets the
//!   write run past the buffer.
//! * **#21287** (Apache-3, 2.0.48) — mod_mem_cache's
//!   `decrement_refcount`: atomic decrement, then an unsynchronized
//!   `if (!obj->refcount) cleanup()`; two threads can both observe zero
//!   and double-free the cache object (Fig. 8).
//! * **#21285** (Apache-4, 2.0.46) — unsynchronized idle-worker counter
//!   updates lose increments; the scoreboard invariant check fails.

use gist_vm::{SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

// ---------------------------------------------------------------------------
// Apache-3 / bug #21287 (Fig. 8): non-atomic dec/check/free double free.
// ---------------------------------------------------------------------------

const PROGRAM_21287: &str = r#"
; apache 2.0.48 mod_mem_cache (miniature) — decrement_refcount double free.
global epilogue_ticks = 0
global declock = 0
global cache_hits = 0
global cache_size = 0

fn record_hit() {
entry:
  h = load $cache_hits              @ mod_mem_cache.c:310
  h2 = add h, 1                     @ mod_mem_cache.c:311
  store $cache_hits, h2             @ mod_mem_cache.c:312
  ret                               @ mod_mem_cache.c:313
}

fn decrement_refcount(obj) {
entry:
  complete = gep obj, 1             @ mod_mem_cache.c:705
  cv = load complete                @ mod_mem_cache.c:705
  call record_hit()                 @ mod_mem_cache.c:706
  lock $declock                     @ mod_mem_cache.c:708
  rc = load obj                     @ mod_mem_cache.c:709
  rc1 = sub rc, 1                   @ mod_mem_cache.c:709
  store obj, rc1                    @ mod_mem_cache.c:709
  unlock $declock                   @ mod_mem_cache.c:710
  rc2 = load obj                    @ mod_mem_cache.c:712
  z = cmp eq rc2, 0                 @ mod_mem_cache.c:712
  condbr z, dofree, done            @ mod_mem_cache.c:712
dofree:
  free obj                          @ mod_mem_cache.c:713
  br done                           @ mod_mem_cache.c:714
done:
  ret                               @ mod_mem_cache.c:716
}

fn main() {
entry:
  obj = alloc 2                     @ mod_mem_cache.c:900
  store obj, 2                      @ mod_mem_cache.c:901
  c = gep obj, 1                    @ mod_mem_cache.c:902
  store c, 1                        @ mod_mem_cache.c:902
  t1 = spawn decrement_refcount(obj) @ mod_mem_cache.c:910
  t2 = spawn decrement_refcount(obj) @ mod_mem_cache.c:911
  join t1                           @ mod_mem_cache.c:913
  join t2                           @ mod_mem_cache.c:914
  call epilogue_work()
  ret                               @ mod_mem_cache.c:916
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config_21287(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Apache #21287 (double free) bug spec.
pub fn apache_3_21287() -> BugSpec {
    BugSpec {
        name: "apache-21287",
        display: "Apache bug #21287",
        software: "Apache httpd",
        version: "2.0.48",
        bug_id: "21287",
        class: BugClass::Concurrency,
        program: super::parse("apache-21287", PROGRAM_21287),
        make_config: config_21287,
        // Fig. 8's ideal sketch: the dec, the re-read check, and the free
        // (in both threads they are the same statements).
        ideal_lines: vec![
            ("mod_mem_cache.c", 709),
            ("mod_mem_cache.c", 712),
            ("mod_mem_cache.c", 713),
        ],
        // Failing order: both decrements precede both zero-observations.
        ideal_order_lines: vec![("mod_mem_cache.c", 709), ("mod_mem_cache.c", 712)],
        root_cause_lines: vec![("mod_mem_cache.c", 709), ("mod_mem_cache.c", 713)],
        prefer_loc: Some(("mod_mem_cache.c", 713)),
        paper: PaperNumbers {
            software_loc: 169_747,
            slice_src: 354,
            slice_instrs: 968,
            ideal_src: 6,
            ideal_instrs: 6,
            gist_src: 8,
            gist_instrs: 8,
            recurrences: 3,
            time_s: 257,
            offline_s: 79,
        },
    }
}

// ---------------------------------------------------------------------------
// Apache-1 / bug #45605: racy slot index leaves a NULL request slot.
// ---------------------------------------------------------------------------

const PROGRAM_45605: &str = r#"
; apache 2.2.9 (miniature) — request table slot race.
global epilogue_ticks = 0
global reqtab[4] = [0, 0, 0, 0]
global nslots = 0
global served = 0

fn handler(arg) {
entry:
  e = alloc 1                       @ worker.c:540
  store e, arg                      @ worker.c:541
  i = load $nslots                  @ worker.c:544
  i2 = add i, 1                     @ worker.c:545
  store $nslots, i2                 @ worker.c:546
  a = gep $reqtab, i                @ worker.c:548
  store a, e                        @ worker.c:548
  ret                               @ worker.c:550
}

fn serve_all() {
entry:
  n = load $nslots                  @ worker.c:600
  ok = cmp eq n, 2                  @ worker.c:601
  assert ok, "request table corrupted" @ worker.c:601
  j = const 0                       @ worker.c:602
  br head                           @ worker.c:603
head:
  more = cmp lt j, n                @ worker.c:604
  condbr more, body, exit           @ worker.c:604
body:
  a = gep $reqtab, j                @ worker.c:606
  p = load a                        @ worker.c:606
  v = load p                        @ worker.c:607
  s = load $served                  @ worker.c:608
  s2 = add s, v                     @ worker.c:608
  store $served, s2                 @ worker.c:608
  j = add j, 1                      @ worker.c:609
  br head                           @ worker.c:610
exit:
  ret                               @ worker.c:612
}

fn main() {
entry:
  t1 = spawn handler(10)            @ worker.c:700
  t2 = spawn handler(20)            @ worker.c:701
  join t1                           @ worker.c:703
  join t2                           @ worker.c:704
  call serve_all()                  @ worker.c:706
  out = load $served                @ worker.c:708
  print out                         @ worker.c:708
  call epilogue_work()
  ret                               @ worker.c:710
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config_45605(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.6 },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Apache #45605 (NULL slot) bug spec.
pub fn apache_1_45605() -> BugSpec {
    BugSpec {
        name: "apache-45605",
        display: "Apache bug #45605",
        software: "Apache httpd",
        version: "2.2.9",
        bug_id: "45605",
        class: BugClass::Concurrency,
        program: super::parse("apache-45605", PROGRAM_45605),
        make_config: config_45605,
        ideal_lines: vec![
            ("worker.c", 544),
            ("worker.c", 546),
            ("worker.c", 600),
            ("worker.c", 601),
        ],
        // Failing order: both handlers' index reads precede both updates
        // (the lost update), leaving the counter short.
        ideal_order_lines: vec![("worker.c", 544), ("worker.c", 546)],
        root_cause_lines: vec![("worker.c", 544), ("worker.c", 546)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 224_533,
            slice_src: 7,
            slice_instrs: 23,
            ideal_src: 8,
            ideal_instrs: 23,
            gist_src: 8,
            gist_instrs: 23,
            recurrences: 5,
            time_s: 262,
            offline_s: 88,
        },
    }
}

// ---------------------------------------------------------------------------
// Apache-2 / bug #25520: buffered log writer stale-length overflow.
// ---------------------------------------------------------------------------

const PROGRAM_25520: &str = r#"
; apache 2.0.48 (miniature) — ap_buffered_log_writer race.
global epilogue_ticks = 0
global logbuf[16] = [0]
global loglen = 0
global flushes = 0

fn log_write(msg) {
entry:
  len = load $loglen                @ http_log.c:1340
  sum = add len, 4                  @ http_log.c:1341
  fits = cmp le sum, 16             @ http_log.c:1342
  condbr fits, fit, flush           @ http_log.c:1342
fit:
  len2 = load $loglen               @ http_log.c:1345
  dst = gep $logbuf, len2           @ http_log.c:1346
  memset dst, msg, 4                @ http_log.c:1346
  sum2 = add len2, 4                @ http_log.c:1347
  store $loglen, sum2               @ http_log.c:1347
  br done                          @ http_log.c:1348
flush:
  store $loglen, 0                  @ http_log.c:1351
  f = load $flushes                 @ http_log.c:1352
  f2 = add f, 1                     @ http_log.c:1352
  store $flushes, f2                @ http_log.c:1352
  br done                          @ http_log.c:1353
done:
  ret                               @ http_log.c:1355
}

fn writer(arg) {
entry:
  i = const 0                       @ http_log.c:1400
  br head                          @ http_log.c:1401
head:
  call log_write(arg)               @ http_log.c:1403
  i = add i, 1                      @ http_log.c:1404
  more = cmp lt i, 3                @ http_log.c:1405
  condbr more, head, exit           @ http_log.c:1405
exit:
  ret                               @ http_log.c:1407
}

fn main() {
entry:
  t1 = spawn writer(7)              @ http_log.c:1500
  t2 = spawn writer(9)              @ http_log.c:1501
  join t1                           @ http_log.c:1503
  join t2                           @ http_log.c:1504
  call epilogue_work()
  ret                               @ http_log.c:1506
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config_25520(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random {
            seed,
            preempt: 0.55,
        },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Apache #25520 (log buffer overflow) bug spec.
pub fn apache_2_25520() -> BugSpec {
    BugSpec {
        name: "apache-25520",
        display: "Apache bug #25520",
        software: "Apache httpd",
        version: "2.0.48",
        bug_id: "25520",
        class: BugClass::Concurrency,
        program: super::parse("apache-25520", PROGRAM_25520),
        make_config: config_25520,
        ideal_lines: vec![
            ("http_log.c", 1340),
            ("http_log.c", 1342),
            ("http_log.c", 1345),
            ("http_log.c", 1346),
            ("http_log.c", 1347),
        ],
        // Failing order: the stale check read, a remote full append, then
        // the re-read that lands past the buffer.
        ideal_order_lines: vec![
            ("http_log.c", 1340),
            ("http_log.c", 1347),
            ("http_log.c", 1345),
        ],
        root_cause_lines: vec![("http_log.c", 1340), ("http_log.c", 1345)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 169_747,
            slice_src: 35,
            slice_instrs: 137,
            ideal_src: 4,
            ideal_instrs: 16,
            gist_src: 4,
            gist_instrs: 16,
            recurrences: 4,
            time_s: 233,
            offline_s: 55,
        },
    }
}

// ---------------------------------------------------------------------------
// Apache-4 / bug #21285: idle-worker counter lost updates.
// ---------------------------------------------------------------------------

const PROGRAM_21285: &str = r#"
; apache 2.0.46 (miniature) — scoreboard idle counter race.
global epilogue_ticks = 0
global idle = 0
global requests = 0

fn busy_work() {
entry:
  r = load $requests                @ prefork.c:820
  r2 = add r, 1                     @ prefork.c:821
  store $requests, r2               @ prefork.c:822
  ret                               @ prefork.c:823
}

fn worker(arg) {
entry:
  i = load $idle                    @ prefork.c:850
  i1 = add i, 1                     @ prefork.c:851
  store $idle, i1                   @ prefork.c:852
  call busy_work()                  @ prefork.c:854
  j = load $idle                    @ prefork.c:856
  j1 = sub j, 1                     @ prefork.c:857
  store $idle, j1                   @ prefork.c:858
  ret                               @ prefork.c:860
}

fn main() {
entry:
  t1 = spawn worker(0)              @ prefork.c:900
  t2 = spawn worker(0)              @ prefork.c:901
  t3 = spawn worker(0)              @ prefork.c:902
  join t1                           @ prefork.c:904
  join t2                           @ prefork.c:905
  join t3                           @ prefork.c:906
  v = load $idle                    @ prefork.c:908
  ok = cmp eq v, 0                  @ prefork.c:909
  assert ok, "idle count corrupted" @ prefork.c:910
  call epilogue_work()
  ret                               @ prefork.c:912
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config_21285(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random {
            seed,
            preempt: 0.65,
        },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Apache #21285 (idle counter) bug spec.
pub fn apache_4_21285() -> BugSpec {
    BugSpec {
        name: "apache-21285",
        display: "Apache bug #21285",
        software: "Apache httpd",
        version: "2.0.46",
        bug_id: "21285",
        class: BugClass::Concurrency,
        program: super::parse("apache-21285", PROGRAM_21285),
        make_config: config_21285,
        ideal_lines: vec![
            ("prefork.c", 850),
            ("prefork.c", 852),
            ("prefork.c", 856),
            ("prefork.c", 858),
            ("prefork.c", 908),
            ("prefork.c", 910),
        ],
        // Failing order: two reads of the counter before either write.
        ideal_order_lines: vec![("prefork.c", 850), ("prefork.c", 852)],
        root_cause_lines: vec![("prefork.c", 850), ("prefork.c", 852)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 168_574,
            slice_src: 335,
            slice_instrs: 805,
            ideal_src: 9,
            ideal_instrs: 12,
            gist_src: 13,
            gist_instrs: 16,
            recurrences: 4,
            time_s: 334,
            offline_s: 83,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::{FailureKind, RunOutcome, Vm};

    #[test]
    fn bug_21287_double_frees_or_uafs() {
        let bug = apache_3_21287();
        let mut kinds = Vec::new();
        for seed in 0..150 {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            if let RunOutcome::Failed(r) = vm.run(&mut []).outcome {
                kinds.push(r.kind.clone());
            }
        }
        assert!(!kinds.is_empty(), "bug must manifest");
        assert!(
            kinds.iter().any(|k| matches!(
                k,
                FailureKind::DoubleFree { .. } | FailureKind::UseAfterFree { .. }
            )),
            "kinds: {kinds:?}"
        );
    }

    #[test]
    fn bug_45605_lost_update_corrupts_request_table() {
        let bug = apache_1_45605();
        let (_, report) = bug.find_failure(200).expect("manifests");
        match &report.kind {
            FailureKind::AssertFail { msg } => assert!(msg.contains("request table")),
            k => panic!("expected assert failure, got {k:?}"),
        }
        let serve = bug.program.function_by_name("serve_all").unwrap();
        assert_eq!(report.stack.first().map(|f| f.func), Some(serve.id));
    }

    #[test]
    fn bug_25520_overflows_log_buffer() {
        let bug = apache_2_25520();
        let (_, report) = bug.find_failure(300).expect("manifests");
        assert!(
            matches!(report.kind, FailureKind::SegFault { .. }),
            "{:?}",
            report.kind
        );
    }

    #[test]
    fn bug_21285_assert_fires_on_lost_update() {
        let bug = apache_4_21285();
        let (_, report) = bug.find_failure(200).expect("manifests");
        match &report.kind {
            FailureKind::AssertFail { msg } => assert!(msg.contains("idle")),
            k => panic!("expected assert, got {k:?}"),
        }
    }

    #[test]
    fn all_apache_bugs_also_succeed() {
        for bug in [
            apache_1_45605(),
            apache_2_25520(),
            apache_3_21287(),
            apache_4_21285(),
        ] {
            let rate = bug.failure_rate(50);
            assert!(rate < 0.9, "{}: rate {rate}", bug.name);
        }
    }
}
