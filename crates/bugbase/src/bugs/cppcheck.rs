//! The two Cppcheck bugs of Table 1 — sequential, input-dependent crashes
//! in a tokenizer/analyzer pipeline.
//!
//! * **#3238** (Cppcheck-1, 1.52) — simplifying an `if` token at the very
//!   end of the token stream dereferences `tok->next` (NULL).
//! * **#2782** (Cppcheck-2, 1.48) — a malformed array dimension drives an
//!   unchecked index computation out of bounds.

use gist_vm::{Input, SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM_3238: &str = r#"
; cppcheck 1.52 (miniature) — tokenizer + if-simplification pass.
global epilogue_ticks = 0
global ntokens = 0
global warnings = 0

fn tokenize(input_base) {
entry:
  head = const 0                  @ tokenize.cpp:100
  prev = const 0                  @ tokenize.cpp:101
  i = const 0                     @ tokenize.cpp:102
  br loop                        @ tokenize.cpp:103
loop:
  c1 = add input_base, i          @ tokenize.cpp:106
  code = load c1                  @ tokenize.cpp:106
  done = cmp eq code, 0           @ tokenize.cpp:107
  condbr done, out, make          @ tokenize.cpp:107
make:
  node = alloc 2                  @ tokenize.cpp:109
  store node, code                @ tokenize.cpp:110
  n = gep node, 1                 @ tokenize.cpp:111
  store n, 0                      @ tokenize.cpp:111
  isfirst = cmp eq prev, 0        @ tokenize.cpp:113
  condbr isfirst, sethead, link   @ tokenize.cpp:113
sethead:
  head = add node, 0              @ tokenize.cpp:114
  br advance                     @ tokenize.cpp:115
link:
  pn = gep prev, 1                @ tokenize.cpp:117
  store pn, node                  @ tokenize.cpp:117
  br advance                     @ tokenize.cpp:118
advance:
  prev = add node, 0              @ tokenize.cpp:120
  i = add i, 1                    @ tokenize.cpp:121
  t = load $ntokens               @ tokenize.cpp:122
  t2 = add t, 1                   @ tokenize.cpp:122
  store $ntokens, t2              @ tokenize.cpp:122
  br loop                        @ tokenize.cpp:123
out:
  ret head                        @ tokenize.cpp:125
}

fn simplify_if(tok) {
entry:
  code = load tok                 @ tokenize.cpp:3200
  isif = cmp eq code, 5           @ tokenize.cpp:3201
  condbr isif, dosimplify, done   @ tokenize.cpp:3201
dosimplify:
  na = gep tok, 1                 @ tokenize.cpp:3203
  nx = load na                    @ tokenize.cpp:3203
  nxcode = load nx                @ tokenize.cpp:3205
  paren = cmp eq nxcode, 2        @ tokenize.cpp:3206
  condbr paren, strip, done       @ tokenize.cpp:3206
strip:
  w = load $warnings              @ tokenize.cpp:3208
  w2 = add w, 1                   @ tokenize.cpp:3208
  store $warnings, w2             @ tokenize.cpp:3208
  br done                        @ tokenize.cpp:3209
done:
  ret                             @ tokenize.cpp:3211
}

fn simplify_all(head) {
entry:
  cur = add head, 0               @ tokenize.cpp:3300
  br loop                        @ tokenize.cpp:3301
loop:
  isnull = cmp eq cur, 0          @ tokenize.cpp:3303
  condbr isnull, out, body        @ tokenize.cpp:3303
body:
  call simplify_if(cur)           @ tokenize.cpp:3305
  na = gep cur, 1                 @ tokenize.cpp:3306
  cur = load na                   @ tokenize.cpp:3306
  br loop                        @ tokenize.cpp:3307
out:
  ret                             @ tokenize.cpp:3309
}

fn main() {
entry:
  src = input 0                   @ main.cpp:50
  head = call tokenize(src)       @ main.cpp:55
  call simplify_all(head)         @ main.cpp:58
  w = load $warnings              @ main.cpp:60
  print w                         @ main.cpp:60
  call epilogue_work()
  ret                             @ main.cpp:62
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

/// Token codes: 1=ident, 2=lparen, 3=rparen, 4=semi, 5=if.
fn config_3238(seed: u64) -> VmConfig {
    // One in four runs ends the token stream with a dangling `if`.
    let tokens: Vec<i64> = match seed % 4 {
        0 => vec![1, 4, 5],       // `x ; if` — if at end: tok->next NULL
        1 => vec![5, 2, 1, 3, 4], // `if ( x ) ;`
        2 => vec![1, 1, 4],       // plain statements
        _ => vec![5, 2, 3, 4, 1], // `if ( ) ; x`
    };
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.1 },
        inputs: vec![Input::Str(tokens)],
        ..VmConfig::default()
    }
}

/// Builds the Cppcheck #3238 bug spec.
pub fn cppcheck_1_3238() -> BugSpec {
    BugSpec {
        name: "cppcheck-3238",
        display: "Cppcheck bug #3238",
        software: "Cppcheck",
        version: "1.52",
        bug_id: "3238",
        class: BugClass::Sequential,
        program: super::parse("cppcheck-3238", PROGRAM_3238),
        make_config: config_3238,
        ideal_lines: vec![
            ("main.cpp", 55),
            ("main.cpp", 58),
            ("tokenize.cpp", 106),
            ("tokenize.cpp", 107),
            ("tokenize.cpp", 109),
            ("tokenize.cpp", 110),
            ("tokenize.cpp", 111),
            ("tokenize.cpp", 113),
            ("tokenize.cpp", 117),
            ("tokenize.cpp", 120),
            ("tokenize.cpp", 121),
            ("tokenize.cpp", 3303),
            ("tokenize.cpp", 3305),
            ("tokenize.cpp", 3306),
            ("tokenize.cpp", 3200),
            ("tokenize.cpp", 3201),
            ("tokenize.cpp", 3203),
            ("tokenize.cpp", 3205),
        ],
        // Data flow: the NULL next pointer is written at token creation
        // and read in the simplifier.
        ideal_order_lines: vec![("tokenize.cpp", 111), ("tokenize.cpp", 3203)],
        root_cause_lines: vec![("tokenize.cpp", 3203), ("tokenize.cpp", 3205)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 86_215,
            slice_src: 3_662,
            slice_instrs: 10_640,
            ideal_src: 11,
            ideal_instrs: 16,
            gist_src: 11,
            gist_instrs: 16,
            recurrences: 4,
            time_s: 314,
            offline_s: 152,
        },
    }
}

const PROGRAM_2782: &str = r#"
; cppcheck 1.48 (miniature) — array-dimension analysis with unchecked index.
global epilogue_ticks = 0
global arrays_checked = 0

fn check_array(dims_base, count) {
entry:
  sizes = alloc 4                 @ checkbufferoverrun.cpp:400
  i = const 0                     @ checkbufferoverrun.cpp:401
  br loop                        @ checkbufferoverrun.cpp:402
loop:
  more = cmp lt i, count          @ checkbufferoverrun.cpp:404
  condbr more, body, out          @ checkbufferoverrun.cpp:404
body:
  da = add dims_base, i           @ checkbufferoverrun.cpp:406
  d = load da                     @ checkbufferoverrun.cpp:406
  sa = gep sizes, i               @ checkbufferoverrun.cpp:408
  store sa, d                     @ checkbufferoverrun.cpp:408
  i = add i, 1                    @ checkbufferoverrun.cpp:409
  br loop                        @ checkbufferoverrun.cpp:410
out:
  n = load $arrays_checked        @ checkbufferoverrun.cpp:412
  n2 = add n, 1                   @ checkbufferoverrun.cpp:412
  store $arrays_checked, n2       @ checkbufferoverrun.cpp:412
  ret sizes                       @ checkbufferoverrun.cpp:414
}

fn main() {
entry:
  dims = input 0                  @ main.cpp:40
  ndims = input 1                 @ main.cpp:41
  s = call check_array(dims, ndims) @ main.cpp:45
  first = load s                  @ main.cpp:47
  print first                     @ main.cpp:47
  call epilogue_work()
  ret                             @ main.cpp:49
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

/// The sizes scratch buffer holds 4 entries; malformed inputs declare more
/// dimensions than that and the copy loop runs off the end.
fn config_2782(seed: u64) -> VmConfig {
    let (dims, ndims): (Vec<i64>, i64) = match seed % 4 {
        0 => (vec![8, 8, 8, 8, 8, 8], 6), // malformed: 6 dimensions
        1 => (vec![16], 1),
        2 => (vec![4, 4], 2),
        _ => (vec![2, 2, 2], 3),
    };
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.1 },
        inputs: vec![Input::Str(dims), Input::Scalar(ndims)],
        ..VmConfig::default()
    }
}

/// Builds the Cppcheck #2782 bug spec.
pub fn cppcheck_2_2782() -> BugSpec {
    BugSpec {
        name: "cppcheck-2782",
        display: "Cppcheck bug #2782",
        software: "Cppcheck",
        version: "1.48",
        bug_id: "2782",
        class: BugClass::Sequential,
        program: super::parse("cppcheck-2782", PROGRAM_2782),
        make_config: config_2782,
        ideal_lines: vec![
            ("main.cpp", 40),
            ("main.cpp", 41),
            ("main.cpp", 45),
            ("checkbufferoverrun.cpp", 400),
            ("checkbufferoverrun.cpp", 401),
            ("checkbufferoverrun.cpp", 404),
            ("checkbufferoverrun.cpp", 406),
            ("checkbufferoverrun.cpp", 408),
            ("checkbufferoverrun.cpp", 409),
        ],
        ideal_order_lines: vec![
            ("checkbufferoverrun.cpp", 400),
            ("checkbufferoverrun.cpp", 408),
        ],
        root_cause_lines: vec![
            ("checkbufferoverrun.cpp", 404),
            ("checkbufferoverrun.cpp", 408),
        ],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 76_009,
            slice_src: 3_028,
            slice_instrs: 8_831,
            ideal_src: 3,
            ideal_instrs: 8,
            gist_src: 3,
            gist_instrs: 8,
            recurrences: 3,
            time_s: 201,
            offline_s: 100,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::{FailureKind, RunOutcome, Vm};

    #[test]
    fn bug_3238_dangling_if_segfaults() {
        let bug = cppcheck_1_3238();
        let (seed, report) = bug.find_failure(8).expect("seed 0 fails");
        assert_eq!(seed % 4, 0);
        assert!(matches!(report.kind, FailureKind::SegFault { addr: 0 }));
        let f = bug.program.function_by_name("simplify_if").unwrap();
        assert_eq!(report.stack.first().map(|fr| fr.func), Some(f.id));
    }

    #[test]
    fn bug_3238_wellformed_inputs_pass() {
        let bug = cppcheck_1_3238();
        for seed in [1u64, 2, 3, 5] {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            assert!(matches!(vm.run(&mut []).outcome, RunOutcome::Finished));
        }
    }

    #[test]
    fn bug_2782_overruns_scratch_buffer() {
        let bug = cppcheck_2_2782();
        let (seed, report) = bug.find_failure(8).expect("seed 0 fails");
        assert_eq!(seed % 4, 0);
        assert!(
            matches!(report.kind, FailureKind::SegFault { .. }),
            "{:?}",
            report.kind
        );
        let f = bug.program.function_by_name("check_array").unwrap();
        assert_eq!(report.stack.first().map(|fr| fr.func), Some(f.id));
    }

    #[test]
    fn bug_2782_valid_dimensions_pass() {
        let bug = cppcheck_2_2782();
        for seed in [1u64, 2, 3] {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            assert!(matches!(vm.run(&mut []).outcome, RunOutcome::Finished));
        }
    }
}
