//! Memcached bug #127 (1.4.4) — an item-refcount race: one connection
//! releases the item (refcount reaches zero, the item is freed) while
//! another connection still reads the item's data: use after free.

use gist_vm::{SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM: &str = r#"
; memcached 1.4.4 (miniature) — item refcount release vs concurrent read.
global epilogue_ticks = 0
global get_hits = 0
global evictions = 0

fn stats_hit() {
entry:
  h = load $get_hits              @ thread.c:80
  h2 = add h, 1                   @ thread.c:81
  store $get_hits, h2             @ thread.c:82
  ret                             @ thread.c:83
}

fn item_release(it) {
entry:
  rc = load it                    @ items.c:240
  rc1 = sub rc, 1                 @ items.c:241
  store it, rc1                   @ items.c:242
  z = cmp eq rc1, 0               @ items.c:244
  condbr z, dofree, out           @ items.c:244
dofree:
  fa = gep it, 1                  @ items.c:245
  store fa, 0                     @ items.c:246
  e = load $evictions             @ items.c:247
  e2 = add e, 1                   @ items.c:247
  store $evictions, e2            @ items.c:247
  h = load $get_hits              @ items.c:248
  h2 = add h, 0                   @ items.c:248
  store $get_hits, h2             @ items.c:248
  free it                         @ items.c:249
  br out                         @ items.c:250
out:
  ret                             @ items.c:252
}

fn conn_get(it) {
entry:
  call stats_hit()                @ memcached.c:1410
  fa = gep it, 1                  @ memcached.c:1411
  flags = load fa                 @ memcached.c:1412
  da = gep it, 2                  @ memcached.c:1413
  d = load da                     @ memcached.c:1413
  out = add flags, d              @ memcached.c:1414
  print out                       @ memcached.c:1414
  ret                             @ memcached.c:1416
}

fn main() {
entry:
  it = alloc 3                    @ items.c:300
  store it, 1                     @ items.c:301
  fa = gep it, 1                  @ items.c:302
  store fa, 1                     @ items.c:302
  da = gep it, 2                  @ items.c:303
  store da, 99                    @ items.c:303
  t1 = spawn item_release(it)     @ memcached.c:1500
  t2 = spawn conn_get(it)         @ memcached.c:1501
  join t1                         @ memcached.c:1503
  join t2                         @ memcached.c:1504
  call epilogue_work()
  ret                             @ memcached.c:1506
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

fn config(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// Builds the Memcached #127 bug spec.
pub fn memcached_127() -> BugSpec {
    BugSpec {
        name: "memcached-127",
        display: "Memcached bug #127",
        software: "Memcached",
        version: "1.4.4",
        bug_id: "127",
        class: BugClass::Concurrency,
        program: super::parse("memcached-127", PROGRAM),
        make_config: config,
        ideal_lines: vec![
            ("items.c", 300),
            ("memcached.c", 1501),
            ("memcached.c", 1411),
            ("memcached.c", 1412),
            ("items.c", 246),
        ],
        // Failing order: the unlink's flag clear precedes the
        // connection's crashing flags read.
        ideal_order_lines: vec![("items.c", 246), ("memcached.c", 1412)],
        root_cause_lines: vec![("items.c", 246), ("memcached.c", 1412)],
        prefer_loc: Some(("memcached.c", 1412)),
        paper: PaperNumbers {
            software_loc: 8_182,
            slice_src: 237,
            slice_instrs: 1_003,
            ideal_src: 6,
            ideal_instrs: 13,
            gist_src: 8,
            gist_instrs: 16,
            recurrences: 4,
            time_s: 56,
            offline_s: 2,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::FailureKind;

    #[test]
    fn release_during_get_is_use_after_free() {
        let bug = memcached_127();
        let (_, report) = bug.find_failure(200).expect("manifests");
        assert!(
            matches!(report.kind, FailureKind::UseAfterFree { .. }),
            "{:?}",
            report.kind
        );
        let f = bug.program.function_by_name("conn_get").unwrap();
        assert_eq!(report.stack.first().map(|fr| fr.func), Some(f.id));
    }

    #[test]
    fn rate_is_schedule_dependent() {
        let bug = memcached_127();
        let rate = bug.failure_rate(60);
        assert!(rate > 0.02 && rate < 0.98, "rate {rate}");
    }
}
