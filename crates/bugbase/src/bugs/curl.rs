//! Curl bug #965 (Fig. 7) — a sequential, data-dependent failure.
//!
//! "Passing the string `{}{` (or any other string with unbalanced curly
//! braces) to Curl causes the variable `urls->current` in function
//! `next_url` to be NULL"; `strlen(urls->current)` then segfaults.
//! Developers fixed it by rejecting unbalanced braces in the input URL.

use gist_vm::{Input, SchedulerKind, VmConfig};

use crate::spec::{BugClass, BugSpec, PaperNumbers};

const PROGRAM: &str = r#"
; curl 7.21 (miniature) — URL glob parsing + transfer loop.
global epilogue_ticks = 0
global stats_requests = 0
global stats_bytes = 0
global max_redirects = 0

fn init_config() {
entry:
  r = const 50                       @ tool_cfgable.c:80
  store $max_redirects, r            @ tool_cfgable.c:81
  ret r                              @ tool_cfgable.c:82
}

fn count_depth(s) {
entry:
  i = const 0                        @ tool_urlglob.c:201
  depth = const 0                    @ tool_urlglob.c:202
  br head                            @ tool_urlglob.c:203
head:
  ca = add s, i                      @ tool_urlglob.c:205
  ch = load ca                       @ tool_urlglob.c:205
  done = cmp eq ch, 0                @ tool_urlglob.c:206
  condbr done, out, body             @ tool_urlglob.c:206
body:
  isopen = cmp eq ch, 123            @ tool_urlglob.c:208
  condbr isopen, open, checkclose    @ tool_urlglob.c:208
open:
  depth = add depth, 1               @ tool_urlglob.c:209
  br next                            @ tool_urlglob.c:209
checkclose:
  isclose = cmp eq ch, 125           @ tool_urlglob.c:211
  condbr isclose, close, next        @ tool_urlglob.c:211
close:
  depth = sub depth, 1               @ tool_urlglob.c:212
  br next                            @ tool_urlglob.c:212
next:
  i = add i, 1                       @ tool_urlglob.c:214
  br head                            @ tool_urlglob.c:215
out:
  ret depth                          @ tool_urlglob.c:217
}

fn glob_url(u, s) {
entry:
  depth = call count_depth(s)        @ tool_urlglob.c:240
  bal = cmp eq depth, 0              @ tool_urlglob.c:242
  condbr bal, ok, unbalanced         @ tool_urlglob.c:242
ok:
  store u, s                         @ tool_urlglob.c:244
  br done                            @ tool_urlglob.c:245
unbalanced:
  store u, 0                         @ tool_urlglob.c:247
  br done                            @ tool_urlglob.c:248
done:
  ret                                @ tool_urlglob.c:250
}

fn next_url(u) {
entry:
  cur = load u                       @ tool_urlglob.c:312
  len = strlen cur                   @ tool_urlglob.c:313
  ret len                            @ tool_urlglob.c:314
}

fn operate(u) {
entry:
  i = const 0                        @ tool_operate.c:210
  br head                            @ tool_operate.c:211
head:
  len = call next_url(u)             @ tool_operate.c:213
  n = load $stats_requests           @ tool_operate.c:215
  n2 = add n, 1                      @ tool_operate.c:215
  store $stats_requests, n2          @ tool_operate.c:215
  b = load $stats_bytes              @ tool_operate.c:216
  b2 = add b, len                    @ tool_operate.c:216
  store $stats_bytes, b2             @ tool_operate.c:216
  i = add i, 1                       @ tool_operate.c:217
  more = cmp lt i, 2                 @ tool_operate.c:218
  condbr more, head, exit            @ tool_operate.c:218
exit:
  ret i                              @ tool_operate.c:220
}

fn main() {
entry:
  c = call init_config()             @ tool_main.c:100
  url = input 0                      @ tool_main.c:112
  u = alloc 1                        @ tool_main.c:118
  call glob_url(u, url)              @ tool_main.c:121
  r = call operate(u)                @ tool_main.c:127
  print r                            @ tool_main.c:129
  call epilogue_work()
  ret                                @ tool_main.c:131
}

fn epilogue_work() {
entry:
  k = const 120
  br head
head:
  t = load $epilogue_ticks
  t2 = add t, 1
  store $epilogue_ticks, t2
  k = sub k, 1
  more = cmp gt k, 0
  condbr more, head, exit
exit:
  ret
}
"#;

/// Workload: one in three runs receives an unbalanced-brace URL (the
/// failing input of the bug report); the rest get balanced URLs.
fn config(seed: u64) -> VmConfig {
    let url = match seed % 3 {
        0 => "{}{",
        1 => "http://x/{a}",
        _ => "http://example.org/",
    };
    VmConfig {
        scheduler: SchedulerKind::Random { seed, preempt: 0.1 },
        inputs: vec![Input::str_from(url)],
        ..VmConfig::default()
    }
}

/// Builds the curl #965 bug spec.
pub fn curl_965() -> BugSpec {
    BugSpec {
        name: "curl-965",
        display: "Curl bug #965",
        software: "Curl",
        version: "7.21",
        bug_id: "965",
        class: BugClass::Sequential,
        program: super::parse("curl", PROGRAM),
        make_config: config,
        // Fig. 7's ideal sketch shows only `operate` and `next_url`: the
        // loop, the call, and next_url's load + strlen. The root cause (a
        // bad input) is conveyed by the *value* predictors — `url` is
        // "{}{" and `urls->current` is 0 — exactly as in the paper, where
        // the fix was to reject unbalanced braces in the input.
        ideal_lines: vec![
            ("tool_main.c", 118),
            ("tool_main.c", 127),
            ("tool_operate.c", 210),
            ("tool_operate.c", 213),
            ("tool_urlglob.c", 312),
            ("tool_urlglob.c", 313),
        ],
        // Data flow in failing runs: the NULL current pointer is read just
        // before the crashing strlen.
        ideal_order_lines: vec![("tool_urlglob.c", 312)],
        root_cause_lines: vec![("tool_urlglob.c", 312), ("tool_urlglob.c", 313)],
        prefer_loc: None,
        paper: PaperNumbers {
            software_loc: 81_658,
            slice_src: 15,
            slice_instrs: 46,
            ideal_src: 6,
            ideal_instrs: 17,
            gist_src: 6,
            gist_instrs: 17,
            recurrences: 5,
            time_s: 91,
            offline_s: 40,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_vm::{FailureKind, RunOutcome, Vm};

    #[test]
    fn unbalanced_input_segfaults_in_next_url() {
        let bug = curl_965();
        let (seed, report) = bug.find_failure(10).expect("seed 0 is unbalanced");
        assert_eq!(seed % 3, 0, "failing seeds are the unbalanced ones");
        assert!(matches!(report.kind, FailureKind::SegFault { addr: 0 }));
        let next_url = bug.program.function_by_name("next_url").unwrap();
        assert_eq!(report.stack.first().map(|f| f.func), Some(next_url.id));
    }

    #[test]
    fn balanced_inputs_succeed() {
        let bug = curl_965();
        for seed in [1u64, 2, 4, 5] {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            let r = vm.run(&mut []);
            assert!(
                matches!(r.outcome, RunOutcome::Finished),
                "seed {seed}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn failure_is_deterministic_per_input() {
        let bug = curl_965();
        // Sequential bug: same input class always fails.
        for seed in [0u64, 3, 6, 9] {
            let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
            assert!(matches!(vm.run(&mut []).outcome, RunOutcome::Failed(_)));
        }
    }
}
