//! Model-level shrinking for failing property cases.
//!
//! The vendored proptest has no shrinking of its own, so minimization
//! happens here, on the [`Model`]: greedily delete scaffold elements
//! (helper functions, spinner threads, pad groups) and keep each
//! deletion only while the caller's predicate still holds — i.e. while
//! the shrunk program still reproduces the property failure. The
//! injected pattern itself is never removed; by construction the result
//! still contains exactly one root cause.

use super::model::Model;
use super::SynthBug;

/// Greedily minimizes `model` while `still_fails` keeps returning true
/// on the rebuilt bug. Runs to a fixpoint; returns the smallest model
/// found (possibly the input, if nothing could be removed).
pub fn shrink(model: &Model, mut still_fails: impl FnMut(&SynthBug) -> bool) -> Model {
    let mut best = model.clone();
    loop {
        let mut shrunk = false;
        // Try dropping one scaffold element at a time, largest first
        // (threads shrink the interleaving space the most).
        for i in (0..best.spinners.len()).rev() {
            let mut candidate = best.clone();
            candidate.spinners.remove(i);
            if still_fails(&SynthBug::from_model(candidate.clone())) {
                best = candidate;
                shrunk = true;
            }
        }
        for i in (0..best.helpers.len()).rev() {
            let mut candidate = best.clone();
            candidate.helpers.remove(i);
            if still_fails(&SynthBug::from_model(candidate.clone())) {
                best = candidate;
                shrunk = true;
            }
        }
        if best.pad > 0 {
            let mut candidate = best.clone();
            candidate.pad = 0;
            if still_fails(&SynthBug::from_model(candidate.clone())) {
                best = candidate;
                shrunk = true;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::model::PatternKind;

    #[test]
    fn shrink_removes_all_scaffolding_when_the_predicate_ignores_it() {
        // A predicate that only cares about the pattern accepts every
        // deletion, so shrinking must reach the bare template.
        for seed in 0..16u64 {
            let model = Model::from_seed(seed);
            let shrunk = shrink(&model, |bug| bug.truth.pattern == model.pattern);
            assert!(shrunk.spinners.is_empty(), "seed {seed}");
            assert!(shrunk.helpers.is_empty(), "seed {seed}");
            assert_eq!(shrunk.pad, 0, "seed {seed}");
            assert_eq!(shrunk.pattern, model.pattern);
        }
    }

    #[test]
    fn shrink_keeps_everything_when_nothing_may_go() {
        let model = Model::with_pattern(3, PatternKind::UseAfterFree);
        let baseline = SynthBug::from_model(model.clone());
        let want = baseline.program.stmt_count();
        // Predicate pins the exact statement count: no deletion survives.
        let shrunk = shrink(&model, |bug| bug.program.stmt_count() == want);
        assert_eq!(shrunk, model);
    }
}
