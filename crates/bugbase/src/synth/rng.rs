//! The synthesizer's deterministic RNG.
//!
//! SplitMix64 (Steele/Lea/Flood): one multiply-xorshift pipeline per
//! draw, full 64-bit period, no global state. Every generated program is
//! a pure function of its seed through this generator, which is what
//! makes the bugbase reproducible: the same seed always yields the same
//! program text and the same ground truth, on every host.

/// A SplitMix64 stream.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A draw in the inclusive range `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_inclusive_and_bounded() {
        let mut r = SplitMix64::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..256 {
            let v = r.range(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi, "range should reach both endpoints");
    }
}
