//! The generator's intermediate model: what to inject and what scaffolding
//! to grow around it.
//!
//! A [`Model`] is the *shrinkable* representation of one synthetic bug:
//! the injected root-cause pattern plus a list of removable scaffold
//! elements (helper functions, extra threads, padding statements). The
//! builder ([`super::build`]) lowers a model into an IR program plus its
//! machine-checkable [`GroundTruth`]; the shrinker ([`super::shrink`])
//! deletes scaffold elements while a failing property keeps failing, so
//! regressions are archived at their minimal size.

use gist_vm::FailureKind;

use super::rng::SplitMix64;

/// The single source file every synthetic program is attributed to.
pub const SYNTH_FILE: &str = "synth.c";

/// The injected root-cause pattern of one synthetic bug.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternKind {
    /// Atomicity violation, read – remote write – read (torn snapshot).
    AtomicityRwr,
    /// Atomicity violation, write – remote write – read (clobbered write).
    AtomicityWwr,
    /// Atomicity violation, read – remote write – write (lost update).
    AtomicityRww,
    /// Atomicity violation, write – remote read – write (intermediate
    /// state observed).
    AtomicityWrw,
    /// Order violation: a heap cell used before its (post-spawn) init.
    OrderViolation,
    /// A racing free under a consumer still reading the cell.
    UseAfterFree,
    /// Two threads racing to free the same allocation.
    DoubleFree,
    /// ABBA lock-order inversion between main and a worker.
    Deadlock,
    /// Casper-style null store flowing into a remote dereference.
    NullFlow,
    /// No injected bug: sequential scaffolding only (the negative
    /// control; must diagnose clean).
    Control,
}

/// The five injected pattern families of the issue (plus the control).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// The four serializability-violating interleavings (GA022).
    Atomicity,
    /// Use-before-init order violations (GA024).
    Order,
    /// Use-after-free / double-free lifetime bugs (GA020/GA021).
    Lifetime,
    /// ABBA deadlocks (GA011).
    Deadlock,
    /// Null-flow-into-dereference chains (GA023).
    NullFlow,
    /// No injected bug.
    Control,
}

impl Family {
    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::Atomicity => "atomicity",
            Family::Order => "order",
            Family::Lifetime => "lifetime",
            Family::Deadlock => "deadlock",
            Family::NullFlow => "null-flow",
            Family::Control => "control",
        }
    }
}

impl PatternKind {
    /// Every injectable pattern (everything but the control), in the
    /// order the seed-to-pattern mapping indexes.
    pub const INJECTED: [PatternKind; 9] = [
        PatternKind::AtomicityRwr,
        PatternKind::AtomicityWwr,
        PatternKind::AtomicityRww,
        PatternKind::AtomicityWrw,
        PatternKind::OrderViolation,
        PatternKind::UseAfterFree,
        PatternKind::DoubleFree,
        PatternKind::Deadlock,
        PatternKind::NullFlow,
    ];

    /// The pattern's family.
    pub fn family(self) -> Family {
        match self {
            PatternKind::AtomicityRwr
            | PatternKind::AtomicityWwr
            | PatternKind::AtomicityRww
            | PatternKind::AtomicityWrw => Family::Atomicity,
            PatternKind::OrderViolation => Family::Order,
            PatternKind::UseAfterFree | PatternKind::DoubleFree => Family::Lifetime,
            PatternKind::Deadlock => Family::Deadlock,
            PatternKind::NullFlow => Family::NullFlow,
            PatternKind::Control => Family::Control,
        }
    }

    /// The `gist-analyze` diagnostic code this injection must trigger
    /// (`None` for the control).
    pub fn code(self) -> Option<&'static str> {
        match self {
            PatternKind::AtomicityRwr
            | PatternKind::AtomicityWwr
            | PatternKind::AtomicityRww
            | PatternKind::AtomicityWrw => Some("GA022"),
            PatternKind::OrderViolation => Some("GA024"),
            PatternKind::UseAfterFree => Some("GA020"),
            PatternKind::DoubleFree => Some("GA021"),
            PatternKind::Deadlock => Some("GA011"),
            PatternKind::NullFlow => Some("GA023"),
            PatternKind::Control => None,
        }
    }

    /// The code this injection must contribute to the *confirmed* set
    /// (the `gist-analyze lint` exit-1 codes). Atomicity candidates and
    /// deadlock predictions are advisory, so they return `None`.
    pub fn confirmed_code(self) -> Option<&'static str> {
        match self {
            PatternKind::OrderViolation => Some("GA024"),
            PatternKind::UseAfterFree => Some("GA020"),
            PatternKind::DoubleFree => Some("GA021"),
            PatternKind::NullFlow => Some("GA023"),
            _ => None,
        }
    }

    /// The AVIO pattern label for atomicity injections.
    pub fn av_label(self) -> Option<&'static str> {
        match self {
            PatternKind::AtomicityRwr => Some("RWR"),
            PatternKind::AtomicityWwr => Some("WWR"),
            PatternKind::AtomicityRww => Some("RWW"),
            PatternKind::AtomicityWrw => Some("WRW"),
            _ => None,
        }
    }

    /// Stable kebab-case slug (used in bug names and fixture files).
    pub fn slug(self) -> &'static str {
        match self {
            PatternKind::AtomicityRwr => "av-rwr",
            PatternKind::AtomicityWwr => "av-wwr",
            PatternKind::AtomicityRww => "av-rww",
            PatternKind::AtomicityWrw => "av-wrw",
            PatternKind::OrderViolation => "order",
            PatternKind::UseAfterFree => "uaf",
            PatternKind::DoubleFree => "dfree",
            PatternKind::Deadlock => "deadlock",
            PatternKind::NullFlow => "null-flow",
            PatternKind::Control => "control",
        }
    }

    /// Inverse of [`PatternKind::slug`].
    pub fn from_slug(slug: &str) -> Option<PatternKind> {
        PatternKind::INJECTED
            .iter()
            .copied()
            .chain(std::iter::once(PatternKind::Control))
            .find(|p| p.slug() == slug)
    }
}

/// The failure the injection is expected to manifest as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedFailure {
    /// An `assert` observing the violated invariant.
    Assert,
    /// A null/invalid dereference.
    SegFault,
    /// A read of a freed cell.
    UseAfterFree,
    /// A second free of the same allocation.
    DoubleFree,
    /// All live threads blocked.
    Deadlock,
}

impl ExpectedFailure {
    /// True if a dynamic failure kind matches this expectation.
    pub fn matches(self, kind: &FailureKind) -> bool {
        matches!(
            (self, kind),
            (ExpectedFailure::Assert, FailureKind::AssertFail { .. })
                | (ExpectedFailure::SegFault, FailureKind::SegFault { .. })
                | (
                    ExpectedFailure::UseAfterFree,
                    FailureKind::UseAfterFree { .. }
                )
                | (ExpectedFailure::DoubleFree, FailureKind::DoubleFree { .. })
                | (ExpectedFailure::Deadlock, FailureKind::Deadlock)
        )
    }

    /// Stable label for serialization.
    pub fn label(self) -> &'static str {
        match self {
            ExpectedFailure::Assert => "assert",
            ExpectedFailure::SegFault => "segfault",
            ExpectedFailure::UseAfterFree => "use-after-free",
            ExpectedFailure::DoubleFree => "double-free",
            ExpectedFailure::Deadlock => "deadlock",
        }
    }

    /// Inverse of [`ExpectedFailure::label`].
    pub fn from_label(label: &str) -> Option<ExpectedFailure> {
        [
            ExpectedFailure::Assert,
            ExpectedFailure::SegFault,
            ExpectedFailure::UseAfterFree,
            ExpectedFailure::DoubleFree,
            ExpectedFailure::Deadlock,
        ]
        .into_iter()
        .find(|e| e.label() == label)
    }
}

/// A removable scaffold thread: a bounded loop bumping its own global.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaffoldThread {
    /// Loop iterations (kept small so failure rates stay healthy).
    pub iters: u32,
}

/// A removable pure helper function called from `main`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaffoldFunc {
    /// Arithmetic bias folded into the helper body.
    pub bias: i64,
}

/// The shrinkable description of one synthetic bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    /// The generation seed (also names the bug).
    pub seed: u64,
    /// What to inject.
    pub pattern: PatternKind,
    /// Removable helper functions called from `main`.
    pub helpers: Vec<ScaffoldFunc>,
    /// Removable extra threads (total thread count stays in 2–4 for
    /// injected patterns: main + one bug worker + up to two of these).
    pub spinners: Vec<ScaffoldThread>,
    /// Removable padding statement groups inside the racy window.
    pub pad: u32,
    /// Initial value of the shared cell.
    pub init: i64,
    /// The remote update amount (kept non-zero so updates are visible).
    pub delta: i64,
}

impl Model {
    /// Derives the full model for `seed`: pattern choice and scaffold
    /// shape all come from one SplitMix64 stream.
    pub fn from_seed(seed: u64) -> Model {
        let mut rng = SplitMix64::new(seed);
        let pattern = PatternKind::INJECTED[rng.below(PatternKind::INJECTED.len() as u64) as usize];
        Model::with_pattern_rng(seed, pattern, &mut rng)
    }

    /// Derives the model for `seed` with a forced pattern (used by the
    /// per-family tests; scaffolding still varies with the seed).
    pub fn with_pattern(seed: u64, pattern: PatternKind) -> Model {
        let mut rng = SplitMix64::new(seed);
        let _ = rng.next_u64(); // keep scaffold draws aligned with from_seed
        Model::with_pattern_rng(seed, pattern, &mut rng)
    }

    /// The sequential negative control for `seed`: scaffolding only, no
    /// threads, no injection.
    pub fn control(seed: u64) -> Model {
        let mut model = Model::with_pattern(seed, PatternKind::Control);
        // Sequential by definition: the control must exercise the
        // "no threads -> no concurrency findings" invariants.
        model.spinners.clear();
        model
    }

    fn with_pattern_rng(seed: u64, pattern: PatternKind, rng: &mut SplitMix64) -> Model {
        let helpers = (0..rng.below(3))
            .map(|_| ScaffoldFunc {
                bias: rng.range(1, 9) as i64,
            })
            .collect();
        let spinners = (0..rng.below(3))
            .map(|_| ScaffoldThread {
                iters: rng.range(2, 5) as u32,
            })
            .collect();
        Model {
            seed,
            pattern,
            helpers,
            spinners,
            pad: rng.below(3) as u32,
            init: rng.range(1, 9) as i64,
            delta: rng.range(1, 9) as i64,
        }
    }
}

/// The machine-checkable ground truth emitted alongside each program.
///
/// All line references are into [`SYNTH_FILE`]; every generated statement
/// has its own line, so `(SYNTH_FILE, line)` resolves to exactly the
/// statements of one source-level action (the same line-granular scheme
/// [`crate::BugSpec`] uses).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundTruth {
    /// The injected pattern.
    pub pattern: PatternKind,
    /// The expected failure kind (`None` for the control, which must not
    /// fail at all).
    pub expected: Option<ExpectedFailure>,
    /// The line of the statement where the failure manifests.
    pub failure_line: Option<u32>,
    /// Names of the thread routines involved in the bug (`main` first).
    pub threads: Vec<String>,
    /// Lines a correct sketch must contain (the dynamic recovery gate;
    /// the AsT stop condition).
    pub root_cause_lines: Vec<u32>,
    /// Lines the static finding (`gist-analyze lint`'s GA0xx diagnostic)
    /// must reference. Usually equal to `root_cause_lines`; deadlocks
    /// override it with the full ABBA cycle, which only the static
    /// analysis can see (the dynamic sketch localizes the blocked
    /// acquisition and its mutex provenance).
    pub static_lines: Vec<u32>,
    /// The ideal-sketch lines (accuracy denominator, §5.2 style).
    pub ideal_lines: Vec<u32>,
    /// The ideal partial order of the key accesses in a failing run.
    pub order_lines: Vec<u32>,
}

impl GroundTruth {
    /// An empty truth for `pattern` (the builder fills the line lists).
    pub fn new(pattern: PatternKind) -> GroundTruth {
        GroundTruth {
            pattern,
            expected: None,
            failure_line: None,
            threads: vec!["main".to_owned()],
            root_cause_lines: Vec::new(),
            static_lines: Vec::new(),
            ideal_lines: Vec::new(),
            order_lines: Vec::new(),
        }
    }

    /// The expected `gist-analyze` code (`None` for the control).
    pub fn code(&self) -> Option<&'static str> {
        self.pattern.code()
    }

    /// Renders the truth in the stable text format archived next to
    /// shrunk regression programs (`*.truth`).
    pub fn render(&self) -> String {
        let lines = |v: &[u32]| {
            v.iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let mut out = String::new();
        out.push_str(&format!("pattern: {}\n", self.pattern.slug()));
        out.push_str(&format!("code: {}\n", self.code().unwrap_or("-")));
        out.push_str(&format!(
            "failure_kind: {}\n",
            self.expected.map(|e| e.label()).unwrap_or("-")
        ));
        out.push_str(&format!(
            "failure_line: {}\n",
            self.failure_line
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".to_owned())
        ));
        out.push_str(&format!("threads: {}\n", self.threads.join(" ")));
        out.push_str(&format!("root_cause: {}\n", lines(&self.root_cause_lines)));
        out.push_str(&format!("static: {}\n", lines(&self.static_lines)));
        out.push_str(&format!("ideal: {}\n", lines(&self.ideal_lines)));
        out.push_str(&format!("order: {}\n", lines(&self.order_lines)));
        out
    }

    /// Parses the [`GroundTruth::render`] format (regression replay).
    pub fn parse(text: &str) -> Result<GroundTruth, String> {
        let mut truth = GroundTruth::new(PatternKind::Control);
        let mut saw_pattern = false;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed truth line: {line}"))?;
            let value = value.trim();
            let nums = |v: &str| -> Result<Vec<u32>, String> {
                v.split_whitespace()
                    .map(|t| t.parse::<u32>().map_err(|e| format!("bad line '{t}': {e}")))
                    .collect()
            };
            match key.trim() {
                "pattern" => {
                    truth.pattern = PatternKind::from_slug(value)
                        .ok_or_else(|| format!("unknown pattern '{value}'"))?;
                    saw_pattern = true;
                }
                "code" => {} // derived from the pattern
                "failure_kind" => {
                    truth.expected = if value == "-" {
                        None
                    } else {
                        Some(
                            ExpectedFailure::from_label(value)
                                .ok_or_else(|| format!("unknown failure kind '{value}'"))?,
                        )
                    };
                }
                "failure_line" => {
                    truth.failure_line = if value == "-" {
                        None
                    } else {
                        Some(value.parse().map_err(|e| format!("bad line: {e}"))?)
                    };
                }
                "threads" => {
                    truth.threads = value.split_whitespace().map(str::to_owned).collect();
                }
                "root_cause" => truth.root_cause_lines = nums(value)?,
                "static" => truth.static_lines = nums(value)?,
                "ideal" => truth.ideal_lines = nums(value)?,
                "order" => truth.order_lines = nums(value)?,
                other => return Err(format!("unknown truth key '{other}'")),
            }
        }
        if !saw_pattern {
            return Err("truth file has no pattern line".to_owned());
        }
        Ok(truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_a_pure_function_of_the_seed() {
        for seed in [0, 1, 7, 42, 0xDEAD_BEEF] {
            assert_eq!(Model::from_seed(seed), Model::from_seed(seed));
        }
    }

    #[test]
    fn every_injected_pattern_has_a_code_and_slug_roundtrip() {
        for p in PatternKind::INJECTED {
            assert!(p.code().is_some());
            assert_eq!(PatternKind::from_slug(p.slug()), Some(p));
        }
        assert_eq!(PatternKind::Control.code(), None);
        assert_eq!(
            PatternKind::from_slug(PatternKind::Control.slug()),
            Some(PatternKind::Control)
        );
    }

    #[test]
    fn truth_render_parse_roundtrip() {
        let mut truth = GroundTruth::new(PatternKind::UseAfterFree);
        truth.expected = Some(ExpectedFailure::UseAfterFree);
        truth.failure_line = Some(142);
        truth.threads = vec!["main".to_owned(), "consumer".to_owned()];
        truth.root_cause_lines = vec![130, 142];
        truth.static_lines = vec![130, 142];
        truth.ideal_lines = vec![120, 125, 130, 142];
        truth.order_lines = vec![130, 142];
        let parsed = GroundTruth::parse(&truth.render()).expect("roundtrip");
        assert_eq!(parsed, truth);
    }

    #[test]
    fn control_models_are_sequential() {
        for seed in 0..20 {
            let m = Model::control(seed);
            assert_eq!(m.pattern, PatternKind::Control);
            assert!(m.spinners.is_empty());
        }
    }
}
