//! Seeded concurrency-bug synthesizer with machine-checkable ground truth.
//!
//! The hand-built bugbase ([`crate::all_bugs`]) anchors the pipeline to
//! the paper's Table 1; this module scales the accuracy claim from 11
//! fixtures to a *statistical* one: generate N random-but-deterministic
//! multithreaded programs, inject exactly one known root-cause pattern
//! into each (atomicity violations in all four AVIO shapes, order
//! violations, use-after-free, double free, ABBA deadlock, Casper-style
//! null-flow-into-deref), and property-check that the static lints and
//! the full dynamic AsT loop recover the injected cause.
//!
//! Everything is a pure function of the seed: same seed, same program
//! text, same [`GroundTruth`] — on every host. See `DESIGN.md`
//! ("Synthetic bugbase") for the generator grammar and the injection
//! templates.

mod build;
mod model;
mod rng;
mod shrink;

pub use build::build;
pub use model::{
    ExpectedFailure, Family, GroundTruth, Model, PatternKind, ScaffoldFunc, ScaffoldThread,
    SYNTH_FILE,
};
pub use rng::SplitMix64;
pub use shrink::shrink;

use std::collections::BTreeSet;

use gist_ir::{InstrId, Program};
use gist_sketch::IdealSketch;
use gist_vm::{FailureReport, RunOutcome, SchedulerKind, Vm, VmConfig};

/// The production-workload configuration every synthetic bug runs under
/// (same scheduler shape as the hand-built concurrency bugs). A plain
/// `fn` so it can serve as a fleet `make_config` directly.
pub fn synth_config(seed: u64) -> VmConfig {
    VmConfig {
        scheduler: SchedulerKind::Random {
            seed,
            preempt: 0.55,
        },
        num_cores: 4,
        ..VmConfig::default()
    }
}

/// One generated bug: the program, the model it was lowered from, and
/// its ground truth.
///
/// The API mirrors [`crate::BugSpec`] (owned strings instead of
/// `&'static str`, a [`GroundTruth`] instead of paper numbers) so the
/// evaluation loop treats synthetic and hand-built bugs uniformly.
pub struct SynthBug {
    /// `synth-<seed:08x>-<pattern>`.
    pub name: String,
    /// The generation seed.
    pub seed: u64,
    /// The shrinkable model this program was lowered from.
    pub model: Model,
    /// The generated program.
    pub program: Program,
    /// The machine-checkable ground truth.
    pub truth: GroundTruth,
}

/// Generates the bug for `seed` (pattern chosen by the seed).
pub fn generate(seed: u64) -> SynthBug {
    SynthBug::from_model(Model::from_seed(seed))
}

/// Generates the sequential negative control for `seed`.
pub fn generate_control(seed: u64) -> SynthBug {
    SynthBug::from_model(Model::control(seed))
}

/// Generates the bug for `seed` with a forced pattern.
pub fn generate_with_pattern(seed: u64, pattern: PatternKind) -> SynthBug {
    SynthBug::from_model(Model::with_pattern(seed, pattern))
}

impl SynthBug {
    /// Lowers a model into a bug.
    pub fn from_model(model: Model) -> SynthBug {
        let (program, truth) = build(&model);
        SynthBug {
            name: program.name.clone(),
            seed: model.seed,
            model,
            program,
            truth,
        }
    }

    /// The program's textual form (byte-stable across hosts; the
    /// determinism tests compare it directly).
    pub fn text(&self) -> String {
        gist_ir::printer::print_program(&self.program)
    }

    /// All statements attributed to `synth.c:line`.
    pub fn stmts_at(&self, line: u32) -> Vec<InstrId> {
        stmts_at(&self.program, line)
    }

    fn lines_to_stmts(&self, lines: &[u32]) -> Vec<InstrId> {
        lines.iter().flat_map(|&l| self.stmts_at(l)).collect()
    }

    /// The root-cause statement set (AsT stop condition).
    pub fn root_cause_stmts(&self) -> BTreeSet<InstrId> {
        self.lines_to_stmts(&self.truth.root_cause_lines)
            .into_iter()
            .collect()
    }

    /// The ideal-sketch statement set.
    pub fn ideal_stmts(&self) -> BTreeSet<InstrId> {
        self.lines_to_stmts(&self.truth.ideal_lines)
            .into_iter()
            .collect()
    }

    /// The ideal sketch, resolved to statement ids.
    pub fn ideal_sketch(&self) -> IdealSketch {
        let stmts = self.lines_to_stmts(&self.truth.ideal_lines);
        let access_order = self.lines_to_stmts(&self.truth.order_lines);
        let source_loc = self.program.source_loc_count(stmts.iter());
        IdealSketch {
            stmts,
            access_order,
            source_loc,
        }
    }

    /// Line-granular coverage (one representative statement per line
    /// suffices; same scheme as [`crate::BugSpec::lines_covered`]).
    pub fn lines_covered(&self, stmts: &BTreeSet<InstrId>, lines: &[u32]) -> bool {
        lines_covered(&self.program, stmts, lines)
    }

    /// Line-level root-cause coverage.
    pub fn root_cause_covered(&self, stmts: &BTreeSet<InstrId>) -> bool {
        self.lines_covered(stmts, &self.truth.root_cause_lines)
    }

    /// Searches seeds `0..max_seeds` for a failing run matching the
    /// ground truth (see [`find_failure_in`]).
    pub fn find_failure(&self, max_seeds: u64) -> Option<(u64, FailureReport)> {
        find_failure_in(&self.program, &self.truth, max_seeds)
    }

    /// Fraction of the first `n` seeds that fail.
    pub fn failure_rate(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let fails = (0..n)
            .filter(|&seed| {
                let mut vm = Vm::new(&self.program, synth_config(seed));
                matches!(vm.run(&mut []).outcome, RunOutcome::Failed(_))
            })
            .count();
        fails as f64 / n as f64
    }
}

/// All statements of `program` attributed to `synth.c:line` (free
/// function so regression replay can work from a parsed fixture without
/// reconstructing a [`SynthBug`]).
pub fn stmts_at(program: &Program, line: u32) -> Vec<InstrId> {
    let Some(fid) = program.source_map.find_file(SYNTH_FILE) else {
        return Vec::new();
    };
    program
        .all_stmt_ids()
        .filter(|&id| {
            program
                .stmt_loc(id)
                .map(|l| l.file == fid && l.line == line)
                .unwrap_or(false)
        })
        .collect()
}

/// Line-granular coverage over an arbitrary program (see
/// [`SynthBug::lines_covered`]).
pub fn lines_covered(program: &Program, stmts: &BTreeSet<InstrId>, lines: &[u32]) -> bool {
    lines.iter().all(|&l| {
        let line_stmts = stmts_at(program, l);
        !line_stmts.is_empty() && line_stmts.iter().any(|s| stmts.contains(s))
    })
}

/// Runs seeds `0..max_seeds` until the program fails *the injected way*:
/// the failure kind matches the ground truth's expectation and, when the
/// truth pins a failure line, the failing statement sits on it. Failures
/// of the right kind at other sites are kept as a fallback; failures of
/// the wrong kind are skipped entirely (they would indicate a second,
/// uninjected bug — the property suite checks for exactly that).
pub fn find_failure_in(
    program: &Program,
    truth: &GroundTruth,
    max_seeds: u64,
) -> Option<(u64, FailureReport)> {
    let expected = truth.expected?;
    let mut fallback: Option<(u64, FailureReport)> = None;
    for seed in 0..max_seeds {
        let mut vm = Vm::new(program, synth_config(seed));
        if let RunOutcome::Failed(r) = vm.run(&mut []).outcome {
            if !expected.matches(&r.kind) {
                continue;
            }
            let line_matches = match truth.failure_line {
                None => true,
                Some(line) => r
                    .loc
                    .map(|loc| program.source_map.display(loc) == format!("{SYNTH_FILE}:{line}"))
                    .unwrap_or(false),
            };
            if line_matches {
                return Some((seed, r));
            }
            if fallback.is_none() {
                fallback = Some((seed, r));
            }
        }
    }
    fallback
}
