//! Lowers a [`Model`] into an IR program plus its [`GroundTruth`].
//!
//! Layout invariants the rest of the pipeline depends on:
//!
//! * every emitted statement (terminators included) has its own line in
//!   [`SYNTH_FILE`], so `(SYNTH_FILE, line)` identifies exactly one
//!   source-level action and line-granular ground truth is unambiguous;
//! * scaffolding (helpers, spinner threads, pad) never touches the cells
//!   the injection races on — each spinner bumps its own private global,
//!   pad bumps a main-only `noise` global — so the injected pattern is
//!   the *only* concurrency finding a sound analysis can report;
//! * `main` is always thread 0 and the injected worker is spawned after
//!   every spinner, so spinner removal by the shrinker never renumbers
//!   the lines of the pattern body (lines are assigned in emission
//!   order: helpers, spinners, workers, then `main`).

use gist_ir::builder::{FunctionBuilder, ProgramBuilder};
use gist_ir::{Callee, CmpKind, FileId, FuncId, Operand, Program};

use super::model::{ExpectedFailure, GroundTruth, Model, PatternKind, SYNTH_FILE};

/// First line number of the synthetic source file.
const BASE_LINE: u32 = 100;

/// A monotonically increasing line counter: one line per statement.
struct Lines {
    next: u32,
}

impl Lines {
    fn new() -> Lines {
        Lines { next: BASE_LINE }
    }

    fn next(&mut self) -> u32 {
        let l = self.next;
        self.next += 1;
        l
    }
}

/// Emits one statement-producing closure at a fresh line and returns
/// that line.
fn at(f: &mut FunctionBuilder<'_>, file: FileId, lines: &mut Lines) -> u32 {
    let l = lines.next();
    f.at_line(file, l);
    l
}

/// Builds the program and ground truth for `model`.
///
/// # Panics
///
/// Panics if the generated program fails IR validation — the property
/// suite asserts this can't happen for any seed, so a validation error
/// here is a generator bug, not an input error.
pub fn build(model: &Model) -> (Program, GroundTruth) {
    let name = format!("synth-{:08x}-{}", model.seed, model.pattern.slug());
    let mut pb = ProgramBuilder::new(&name);
    let file = pb.file(SYNTH_FILE);
    let mut lines = Lines::new();

    // Scaffold helpers: pure arithmetic, called from main.
    let mut helper_ids: Vec<FuncId> = Vec::new();
    for (i, h) in model.helpers.iter().enumerate() {
        let mut f = pb.function(&format!("helper{i}"), &["x"]);
        let x = f.var("x");
        at(&mut f, file, &mut lines);
        let a = f.add("a", x.into(), h.bias.into());
        at(&mut f, file, &mut lines);
        let b = f.add("b", a.into(), (i as i64).into());
        at(&mut f, file, &mut lines);
        f.ret(Some(b.into()));
        helper_ids.push(f.id());
        f.finish();
    }

    // Scaffold spinner threads: each runs a bounded countdown loop over
    // its own private global, then returns (they must terminate so a
    // deadlock of the pattern threads is still detected).
    let mut spinner_ids: Vec<FuncId> = Vec::new();
    for (i, s) in model.spinners.iter().enumerate() {
        let tick = pb.global(&format!("tick{i}"), 0);
        let mut f = pb.function(&format!("spin{i}"), &["arg"]);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        at(&mut f, file, &mut lines);
        let k = f.const_i64("k", s.iters as i64);
        at(&mut f, file, &mut lines);
        f.br(head);
        f.switch_to(head);
        at(&mut f, file, &mut lines);
        let c = f.cmp("c", CmpKind::Gt, k.into(), 0.into());
        at(&mut f, file, &mut lines);
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        at(&mut f, file, &mut lines);
        let tv = f.load("tv", tick.into());
        at(&mut f, file, &mut lines);
        let tv2 = f.add("tv2", tv.into(), 1.into());
        at(&mut f, file, &mut lines);
        f.store(tick.into(), tv2.into());
        at(&mut f, file, &mut lines);
        f.sub("k", k.into(), 1.into());
        at(&mut f, file, &mut lines);
        f.br(head);
        f.switch_to(exit);
        at(&mut f, file, &mut lines);
        f.ret(None);
        spinner_ids.push(f.id());
        f.finish();
    }

    let mut truth = GroundTruth::new(model.pattern);
    emit_pattern(
        &mut pb,
        file,
        &mut lines,
        model,
        &helper_ids,
        &spinner_ids,
        &mut truth,
    );

    let program = match pb.finish() {
        Ok(p) => p,
        Err(errors) => panic!(
            "generated program for seed {:#x} is invalid: {errors:?}",
            model.seed
        ),
    };
    (program, truth)
}

/// Emits pad statements (main-only `noise` bumps) inside a racy window.
fn pad(f: &mut FunctionBuilder<'_>, file: FileId, lines: &mut Lines, noise: Operand, n: u32) {
    for j in 0..n {
        at(f, file, lines);
        let nv = f.load(&format!("nv{j}"), noise);
        at(f, file, lines);
        let nv2 = f.add(&format!("nw{j}"), nv.into(), 1.into());
        at(f, file, lines);
        f.store(noise, nv2.into());
    }
}

/// Spawns every spinner and returns the tid registers (by name).
fn spawn_spinners(
    f: &mut FunctionBuilder<'_>,
    file: FileId,
    lines: &mut Lines,
    spinner_ids: &[FuncId],
) -> Vec<String> {
    let mut tids = Vec::new();
    for (i, &s) in spinner_ids.iter().enumerate() {
        let name = format!("sp{i}");
        at(f, file, lines);
        f.spawn(Some(&name), Callee::Direct(s), 0.into());
        tids.push(name);
    }
    tids
}

/// Calls every helper from main (results feed nothing racy).
fn call_helpers(
    f: &mut FunctionBuilder<'_>,
    file: FileId,
    lines: &mut Lines,
    helper_ids: &[FuncId],
) {
    for (i, &h) in helper_ids.iter().enumerate() {
        at(f, file, lines);
        f.call_direct(&format!("h{i}"), h, &[(i as i64).into()]);
    }
}

/// Joins the spinner tids spawned by [`spawn_spinners`].
fn join_spinners(f: &mut FunctionBuilder<'_>, file: FileId, lines: &mut Lines, tids: &[String]) {
    for name in tids {
        let tid = f.var(name);
        at(f, file, lines);
        f.join(tid.into());
    }
}

#[allow(clippy::too_many_lines)]
fn emit_pattern(
    pb: &mut ProgramBuilder,
    file: FileId,
    lines: &mut Lines,
    model: &Model,
    helper_ids: &[FuncId],
    spinner_ids: &[FuncId],
    truth: &mut GroundTruth,
) {
    let noise = pb.global("noise", 0);
    match model.pattern {
        PatternKind::AtomicityRwr => {
            let shared = pb.global("shared", model.init);
            let lk = pb.global("lk", 0);
            // Worker: one locked update of the shared cell.
            let mut w = pb.function("updater", &["arg"]);
            at(&mut w, file, lines);
            w.lock(lk.into());
            at(&mut w, file, lines);
            let v = w.load("v", shared.into());
            at(&mut w, file, lines);
            let v2 = w.add("v2", v.into(), model.delta.into());
            let l_rem = at(&mut w, file, lines);
            w.store(shared.into(), v2.into());
            at(&mut w, file, lines);
            w.unlock(lk.into());
            at(&mut w, file, lines);
            w.ret(None);
            let updater = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(updater), 0.into());
            // Unlocked double read of the shared cell: the local pair the
            // remote store can tear.
            let l_a = at(&mut m, file, lines);
            let a = m.load("a", shared.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_b = at(&mut m, file, lines);
            let b = m.load("b", shared.into());
            at(&mut m, file, lines);
            let eq = m.cmp("eq", CmpKind::Eq, a.into(), b.into());
            let l_f = at(&mut m, file, lines);
            m.assert(eq.into(), "snapshot torn");
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::Assert);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "updater".into()];
            truth.root_cause_lines = vec![l_a, l_rem, l_b];
            truth.static_lines = vec![l_a, l_rem, l_b];
            truth.order_lines = vec![l_a, l_rem, l_b];
            truth.ideal_lines = vec![l_spawn, l_a, l_rem, l_b, l_f];
        }
        PatternKind::AtomicityWwr => {
            let shared = pb.global("shared", model.init);
            let lk = pb.global("lk", 0);
            let clobber = model.init + model.delta + 1;
            let mut w = pb.function("clobberer", &["arg"]);
            at(&mut w, file, lines);
            w.lock(lk.into());
            let l_rem = at(&mut w, file, lines);
            w.store(shared.into(), clobber.into());
            at(&mut w, file, lines);
            w.unlock(lk.into());
            at(&mut w, file, lines);
            w.ret(None);
            let clobberer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(clobberer), 0.into());
            // Unlocked write-then-read: the remote store can clobber the
            // written value before main reads it back.
            let written = model.init + model.delta;
            let l_a = at(&mut m, file, lines);
            m.store(shared.into(), written.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_b = at(&mut m, file, lines);
            let r = m.load("r", shared.into());
            at(&mut m, file, lines);
            let ok = m.cmp("ok", CmpKind::Eq, r.into(), written.into());
            let l_f = at(&mut m, file, lines);
            m.assert(ok.into(), "write clobbered");
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::Assert);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "clobberer".into()];
            truth.root_cause_lines = vec![l_a, l_rem, l_b];
            truth.static_lines = vec![l_a, l_rem, l_b];
            truth.order_lines = vec![l_a, l_rem, l_b];
            truth.ideal_lines = vec![l_spawn, l_a, l_rem, l_b, l_f];
        }
        PatternKind::AtomicityRww => {
            let shared = pb.global("shared", model.init);
            let lk = pb.global("lk", 0);
            // The post-join verification lives in its own function so the
            // only same-thread access pair in `main` is the injected
            // unlocked RMW — otherwise the (load, verify-load) pair wins
            // the candidate ranking and the finding classifies as RWR.
            let mut v = pb.function("check_total", &[]);
            at(&mut v, file, lines);
            let fin = v.load("fin", shared.into());
            at(&mut v, file, lines);
            let ok = v.cmp("ok", CmpKind::Eq, fin.into(), (model.init + 2).into());
            let l_f = at(&mut v, file, lines);
            v.assert(ok.into(), "update lost");
            at(&mut v, file, lines);
            v.ret(None);
            let check_total = v.finish();

            let mut w = pb.function("incrementer", &["arg"]);
            at(&mut w, file, lines);
            w.lock(lk.into());
            at(&mut w, file, lines);
            let v = w.load("v", shared.into());
            at(&mut w, file, lines);
            let v2 = w.add("v2", v.into(), 1.into());
            let l_rem = at(&mut w, file, lines);
            w.store(shared.into(), v2.into());
            at(&mut w, file, lines);
            w.unlock(lk.into());
            at(&mut w, file, lines);
            w.ret(None);
            let incrementer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(incrementer), 0.into());
            // Unlocked read-modify-write racing the locked one: when the
            // two RMWs interleave, one increment is lost.
            let l_a = at(&mut m, file, lines);
            let a = m.load("a", shared.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            at(&mut m, file, lines);
            let a2 = m.add("a2", a.into(), 1.into());
            let l_b = at(&mut m, file, lines);
            m.store(shared.into(), a2.into());
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            at(&mut m, file, lines);
            m.call_void(check_total, &[]);
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::Assert);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "incrementer".into()];
            truth.root_cause_lines = vec![l_a, l_b, l_rem];
            truth.static_lines = vec![l_a, l_b, l_rem];
            // The only cross-run-invariant arrow of a lost update: main's
            // stale read happens before the remote store it ignores.
            truth.order_lines = vec![l_a, l_rem];
            truth.ideal_lines = vec![l_spawn, l_a, l_rem, l_b, l_f];
        }
        PatternKind::AtomicityWrw => {
            let shared = pb.global("shared", model.init);
            let lk = pb.global("lk", 0);
            let mid = model.init + model.delta;
            let fin = model.init + 2 * model.delta;
            let mut w = pb.function("observer", &["arg"]);
            at(&mut w, file, lines);
            w.lock(lk.into());
            let l_rem = at(&mut w, file, lines);
            let v = w.load("v", shared.into());
            at(&mut w, file, lines);
            w.unlock(lk.into());
            at(&mut w, file, lines);
            let ok = w.cmp("ok", CmpKind::Ne, v.into(), mid.into());
            let l_f = at(&mut w, file, lines);
            w.assert(ok.into(), "intermediate state observed");
            at(&mut w, file, lines);
            w.ret(None);
            let observer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(observer), 0.into());
            // Unlocked two-step update: the intermediate value `mid` is
            // only visible between the two stores.
            let l_a = at(&mut m, file, lines);
            m.store(shared.into(), mid.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_b = at(&mut m, file, lines);
            m.store(shared.into(), fin.into());
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::Assert);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "observer".into()];
            // The failure fires in the observer, possibly before main's
            // second store even executes — only the first store and the
            // remote read are guaranteed to be in the failing trace.
            truth.root_cause_lines = vec![l_a, l_rem];
            truth.static_lines = vec![l_a, l_rem, l_b];
            truth.order_lines = vec![l_a, l_rem];
            truth.ideal_lines = vec![l_spawn, l_a, l_rem, l_f];
        }
        PatternKind::OrderViolation => {
            // A heap cell published to the consumer at spawn but
            // initialized only afterwards: the consumer can read the
            // still-zero cell and dereference null.
            let mut w = pb.function("consumer", &["c"]);
            let c = w.var("c");
            let l_use = at(&mut w, file, lines);
            let p = w.load("p", c.into());
            let l_f = at(&mut w, file, lines);
            w.load("v", p.into());
            at(&mut w, file, lines);
            w.ret(None);
            let consumer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_alloc = at(&mut m, file, lines);
            let cell = m.alloc("cell", 1.into());
            at(&mut m, file, lines);
            let data = m.alloc("data", 1.into());
            at(&mut m, file, lines);
            m.store(data.into(), model.init.into());
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(consumer), cell.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_init = at(&mut m, file, lines);
            m.store(cell.into(), data.into());
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::SegFault);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "consumer".into()];
            // In a failing run the late init never executes before the
            // crash, so the dynamic root cause is what *is* observable:
            // the unpublished cell and the premature read. The static
            // GA024 finding is the one that names the late init. The
            // failure-inducing order is use-before-init (the defining
            // interleaving of an order violation); the alloc is mere
            // program order, which the sketch timeline need not honor.
            truth.root_cause_lines = vec![l_alloc, l_use];
            truth.static_lines = vec![l_init, l_use];
            truth.order_lines = vec![l_use, l_init];
            truth.ideal_lines = vec![l_alloc, l_spawn, l_use, l_f];
        }
        PatternKind::NullFlow => {
            // The cell is initialized *before* spawn (ordered, so no
            // GA024) — the bug is the racing null store afterwards.
            let mut w = pb.function("consumer", &["c"]);
            let c = w.var("c");
            let l_use = at(&mut w, file, lines);
            let p = w.load("p", c.into());
            let l_f = at(&mut w, file, lines);
            w.load("v", p.into());
            at(&mut w, file, lines);
            w.ret(None);
            let consumer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_alloc = at(&mut m, file, lines);
            let cell = m.alloc("cell", 1.into());
            at(&mut m, file, lines);
            let data = m.alloc("data", 1.into());
            at(&mut m, file, lines);
            m.store(data.into(), model.init.into());
            let l_init = at(&mut m, file, lines);
            m.store(cell.into(), data.into());
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(consumer), cell.into());
            let l_null = at(&mut m, file, lines);
            m.store(cell.into(), 0.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::SegFault);
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "consumer".into()];
            truth.root_cause_lines = vec![l_null, l_use];
            truth.static_lines = vec![l_null, l_f];
            truth.order_lines = vec![l_null, l_use];
            truth.ideal_lines = vec![l_alloc, l_init, l_spawn, l_null, l_use, l_f];
        }
        PatternKind::UseAfterFree => {
            let mut w = pb.function("consumer", &["b"]);
            let b = w.var("b");
            let l_use = at(&mut w, file, lines);
            w.load("v", b.into());
            at(&mut w, file, lines);
            w.ret(None);
            let consumer = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_alloc = at(&mut m, file, lines);
            let buf = m.alloc("buf", 1.into());
            at(&mut m, file, lines);
            m.store(buf.into(), model.init.into());
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(consumer), buf.into());
            let l_free = at(&mut m, file, lines);
            m.free(buf.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::UseAfterFree);
            truth.failure_line = Some(l_use);
            truth.threads = vec!["main".into(), "consumer".into()];
            truth.root_cause_lines = vec![l_free, l_use];
            truth.static_lines = vec![l_free, l_use];
            truth.order_lines = vec![l_free, l_use];
            truth.ideal_lines = vec![l_alloc, l_spawn, l_free, l_use];
        }
        PatternKind::DoubleFree => {
            // Unsynchronized check-then-free: the reaper frees and then
            // publishes `done`; main checks `done` without the lock and
            // can free a second time.
            let done = pb.global("done", 0);
            let lk = pb.global("lk", 0);
            let mut w = pb.function("reaper", &["b"]);
            let b = w.var("b");
            at(&mut w, file, lines);
            w.lock(lk.into());
            let l_free2 = at(&mut w, file, lines);
            w.free(b.into());
            at(&mut w, file, lines);
            w.store(done.into(), 1.into());
            at(&mut w, file, lines);
            w.unlock(lk.into());
            at(&mut w, file, lines);
            w.ret(None);
            let reaper = w.finish();

            let mut m = pb.function("main", &[]);
            let dofree = m.new_block("dofree");
            let cont = m.new_block("cont");
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            let l_alloc = at(&mut m, file, lines);
            let buf = m.alloc("buf", 1.into());
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(reaper), buf.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_chk = at(&mut m, file, lines);
            let d = m.load("d", done.into());
            at(&mut m, file, lines);
            let z = m.cmp("z", CmpKind::Eq, d.into(), 0.into());
            at(&mut m, file, lines);
            m.condbr(z.into(), dofree, cont);
            m.switch_to(dofree);
            let l_free1 = at(&mut m, file, lines);
            m.free(buf.into());
            at(&mut m, file, lines);
            m.br(cont);
            m.switch_to(cont);
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::DoubleFree);
            // Either free can be the second (failing) one.
            truth.failure_line = None;
            truth.threads = vec!["main".into(), "reaper".into()];
            truth.root_cause_lines = vec![l_free1, l_free2];
            truth.static_lines = vec![l_free1, l_free2];
            truth.order_lines = Vec::new();
            truth.ideal_lines = vec![l_alloc, l_spawn, l_chk, l_free1, l_free2];
        }
        PatternKind::Deadlock => {
            // ABBA: main takes A then B, the south thread takes B then A.
            let pa = pb.global("pa", 0);
            let pb_ = pb.global("pb", 0);
            let mut w = pb.function("south", &["arg"]);
            at(&mut w, file, lines);
            let w1 = w.load("w1", pb_.into());
            let l_b1 = at(&mut w, file, lines);
            w.lock(w1.into());
            at(&mut w, file, lines);
            let w2 = w.load("w2", pa.into());
            let l_b2 = at(&mut w, file, lines);
            w.lock(w2.into());
            at(&mut w, file, lines);
            w.unlock(w2.into());
            at(&mut w, file, lines);
            w.unlock(w1.into());
            at(&mut w, file, lines);
            w.ret(None);
            let south = w.finish();

            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            at(&mut m, file, lines);
            let la = m.alloc("la", 1.into());
            at(&mut m, file, lines);
            let lb = m.alloc("lb", 1.into());
            at(&mut m, file, lines);
            m.store(pa.into(), la.into());
            at(&mut m, file, lines);
            m.store(pb_.into(), lb.into());
            let l_spawn = at(&mut m, file, lines);
            m.spawn(Some("t"), Callee::Direct(south), 0.into());
            at(&mut m, file, lines);
            let m1 = m.load("m1", pa.into());
            let l_a1 = at(&mut m, file, lines);
            m.lock(m1.into());
            pad(&mut m, file, lines, noise.into(), model.pad);
            let l_m2 = at(&mut m, file, lines);
            let m2 = m.load("m2", pb_.into());
            let l_f = at(&mut m, file, lines);
            m.lock(m2.into());
            at(&mut m, file, lines);
            m.unlock(m2.into());
            at(&mut m, file, lines);
            m.unlock(m1.into());
            let t = m.var("t");
            at(&mut m, file, lines);
            m.join(t.into());
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();

            truth.expected = Some(ExpectedFailure::Deadlock);
            // The VM reports a deadlock at the first blocked thread's
            // current statement; main (tid 0) is always first, blocked
            // acquiring its second mutex.
            truth.failure_line = Some(l_f);
            truth.threads = vec!["main".into(), "south".into()];
            // Dynamic: the mutex provenance and the blocked acquisition —
            // the remote side of the cycle is invisible to data tracking.
            truth.root_cause_lines = vec![l_m2, l_f];
            // Static: GA011's cycle sites, one acquisition per edge.
            truth.static_lines = vec![l_f, l_b2];
            truth.order_lines = Vec::new();
            truth.ideal_lines = vec![l_spawn, l_a1, l_m2, l_f, l_b1, l_b2];
        }
        PatternKind::Control => {
            // Sequential scaffolding only: must run to completion under
            // every schedule and produce no concurrency findings.
            let mut m = pb.function("main", &[]);
            let sp = spawn_spinners(&mut m, file, lines, spinner_ids);
            call_helpers(&mut m, file, lines, helper_ids);
            pad(&mut m, file, lines, noise.into(), model.pad.max(1));
            join_spinners(&mut m, file, lines, &sp);
            at(&mut m, file, lines);
            m.ret(None);
            m.finish();
            truth.threads = vec!["main".into()];
        }
    }
}
