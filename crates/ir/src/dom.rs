//! Dominator and postdominator analyses.
//!
//! Gist's instrumentation planner (paper §3.2.2–§3.2.3) needs three queries:
//!
//! * **strict dominance** — to skip starting control-flow tracking for a
//!   slice statement that is already covered by an earlier one,
//! * **immediate postdominator** — tracking is stopped "after the statement
//!   and before its immediate postdominator",
//! * **immediate dominator** — a watchpoint is placed "before the access and
//!   after the immediate dominator of that access".
//!
//! The implementation is the classic Cooper–Harvey–Kennedy iterative
//! algorithm over reverse postorder, run forward for dominators and on the
//! reversed CFG (with a virtual exit) for postdominators.

use crate::cfg::Cfg;
use crate::types::BlockId;

/// A dominator tree over blocks of one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator of block `b`; the entry (and
    /// unreachable blocks) have `None`.
    idom: Vec<Option<BlockId>>,
    /// Depth of each node in the dominator tree (entry = 0).
    depth: Vec<u32>,
    reachable: Vec<bool>,
}

impl DomTree {
    /// Computes the dominator tree from a CFG.
    pub fn dominators(cfg: &Cfg) -> DomTree {
        Self::compute(
            cfg.len(),
            &cfg.rpo,
            |b| cfg.preds[b.index()].clone(),
            &cfg.reachable,
        )
    }

    /// Computes the postdominator tree from a CFG.
    ///
    /// Multiple exits are joined by a virtual exit node; blocks that cannot
    /// reach any exit (e.g. infinite loops) are treated as unreachable in
    /// the postdominator tree, matching what an LLVM `PostDominatorTree`
    /// reports.
    pub fn postdominators(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        if n == 0 {
            return DomTree {
                idom: Vec::new(),
                depth: Vec::new(),
                reachable: Vec::new(),
            };
        }
        // Build the reversed graph with a virtual root `n` connected from
        // every exit, then run the same iterative algorithm.
        let virt = n;
        let mut rsuccs: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (b, ss) in cfg.succs.iter().enumerate() {
            for s in ss {
                rsuccs[s.index()].push(b);
            }
        }
        for e in &cfg.exits {
            rsuccs[virt].push(e.index());
        }
        // Postorder on the reversed graph from the virtual root.
        let mut seen = vec![false; n + 1];
        let mut post: Vec<usize> = Vec::with_capacity(n + 1);
        let mut stack: Vec<(usize, usize)> = vec![(virt, 0)];
        seen[virt] = true;
        while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
            if *cursor < rsuccs[b].len() {
                let c = rsuccs[b][*cursor];
                *cursor += 1;
                if !seen[c] {
                    seen[c] = true;
                    stack.push((c, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse(); // now reverse postorder, starting with virt
        let rpo: Vec<BlockId> = post.iter().map(|&i| BlockId(i as u32)).collect();
        let reachable: Vec<bool> = seen[..n].to_vec();
        // Predecessors in the reversed graph = successors in the original,
        // plus virt for exits.
        let preds_of = |b: BlockId| -> Vec<BlockId> {
            let bi = b.index();
            if bi == virt {
                return Vec::new();
            }
            let mut v: Vec<BlockId> = cfg.succs[bi].iter().map(|s| BlockId(s.0)).collect();
            if cfg.exits.contains(&b) {
                v.push(BlockId(virt as u32));
            }
            v
        };
        let mut tree = Self::compute(n + 1, &rpo, preds_of, &seen);
        // Strip the virtual node: anything immediately postdominated by it
        // becomes a root (None).
        for i in 0..n {
            if tree.idom[i] == Some(BlockId(virt as u32)) {
                tree.idom[i] = None;
            }
        }
        tree.idom.truncate(n);
        tree.depth.truncate(n);
        tree.reachable = reachable;
        tree
    }

    /// Shared iterative CHK core. `rpo` must start with the root.
    fn compute(
        n: usize,
        rpo: &[BlockId],
        preds_of: impl Fn(BlockId) -> Vec<BlockId>,
        reachable: &[bool],
    ) -> DomTree {
        let mut idom: Vec<Option<usize>> = vec![None; n];
        if rpo.is_empty() {
            return DomTree {
                idom: Vec::new(),
                depth: Vec::new(),
                reachable: reachable.to_vec(),
            };
        }
        let root = rpo[0].index();
        idom[root] = Some(root);
        let mut rpo_idx = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_idx[b.index()] = i;
        }
        let intersect = |idom: &[Option<usize>], rpo_idx: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_idx[a] > rpo_idx[b] {
                    a = idom[a].expect("processed");
                }
                while rpo_idx[b] > rpo_idx[a] {
                    b = idom[b].expect("processed");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let bi = b.index();
                let mut new_idom: Option<usize> = None;
                for p in preds_of(b) {
                    let pi = p.index();
                    if rpo_idx[pi] == usize::MAX || idom[pi].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pi,
                        Some(cur) => intersect(&idom, &rpo_idx, pi, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bi] != Some(ni) {
                        idom[bi] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Convert to tree form: root's idom becomes None; compute depths.
        let mut out_idom: Vec<Option<BlockId>> = vec![None; n];
        for (i, d) in idom.iter().enumerate() {
            if i != root {
                if let Some(d) = d {
                    out_idom[i] = Some(BlockId(*d as u32));
                }
            }
        }
        let mut depth = vec![0u32; n];
        // Depths by repeated walking (n is small for our programs).
        for (i, slot) in depth.iter_mut().enumerate() {
            let mut d = 0;
            let mut cur = i;
            while let Some(p) = out_idom[cur] {
                d += 1;
                cur = p.index();
                if d as usize > n {
                    break; // defensive: malformed tree
                }
            }
            *slot = d;
        }
        DomTree {
            idom: out_idom,
            depth,
            reachable: reachable.to_vec(),
        }
    }

    /// The immediate dominator (or postdominator) of `b`.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.index()).copied().flatten()
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable.get(b.index()).copied().unwrap_or(false) {
            return false;
        }
        let mut cur = b;
        let mut steps = 0usize;
        while let Some(p) = self.idom(cur) {
            if p == a {
                return true;
            }
            cur = p;
            steps += 1;
            if steps > self.idom.len() {
                return false;
            }
        }
        false
    }

    /// True if `a` *strictly* dominates `b` (paper's `sdom`).
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Depth of a node in the tree.
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }

    /// True if the node participates in the tree.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::program::Program;

    /// entry(0) -> then(1), else(2); both -> exit(3).
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let c = f.const_i64("c", 1);
        let t = f.new_block("then");
        let e = f.new_block("else");
        let x = f.new_block("exit");
        f.condbr(c.into(), t, e);
        f.switch_to(t);
        f.br(x);
        f.switch_to(e);
        f.br(x);
        f.switch_to(x);
        f.ret(None);
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn diamond_dominators() {
        let p = diamond();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(dom.strictly_dominates(BlockId(0), BlockId(1)));
        assert!(!dom.strictly_dominates(BlockId(0), BlockId(0)));
    }

    #[test]
    fn diamond_postdominators() {
        let p = diamond();
        let cfg = Cfg::build(&p.functions[0]);
        let pdom = DomTree::postdominators(&cfg);
        // exit postdominates everything.
        assert_eq!(pdom.idom(BlockId(0)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(1)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(2)), Some(BlockId(3)));
        assert_eq!(pdom.idom(BlockId(3)), None);
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
    }

    #[test]
    fn loop_dominators() {
        // entry(0) -> head(1); head -> body(2)|exit(3); body -> head.
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("n", 3);
        let mut f = pb.function("main", &[]);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(head);
        f.switch_to(head);
        let v = f.load("v", g.into());
        f.condbr(v.into(), body, exit);
        f.switch_to(body);
        f.br(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(1)));
        let pdom = DomTree::postdominators(&cfg);
        // head postdominates entry and body; exit postdominates head.
        assert!(pdom.dominates(BlockId(1), BlockId(0)));
        assert!(pdom.dominates(BlockId(1), BlockId(2)));
        assert_eq!(pdom.idom(BlockId(1)), Some(BlockId(3)));
    }

    #[test]
    fn depth_increases_down_tree() {
        let p = diamond();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = DomTree::dominators(&cfg);
        assert_eq!(dom.depth(BlockId(0)), 0);
        assert_eq!(dom.depth(BlockId(1)), 1);
        assert_eq!(dom.depth(BlockId(3)), 1);
    }

    #[test]
    fn single_block_trees() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = DomTree::dominators(&cfg);
        let pdom = DomTree::postdominators(&cfg);
        assert_eq!(dom.idom(BlockId(0)), None);
        assert_eq!(pdom.idom(BlockId(0)), None);
        assert!(dom.dominates(BlockId(0), BlockId(0)));
    }
}
