//! MiniC intermediate representation (IR) for the failure-sketching workspace.
//!
//! This crate is the stand-in for LLVM IR in the Gist pipeline (SOSP'15,
//! "Failure Sketching"). It provides:
//!
//! * a small, typed, register-based IR ([`Program`], [`Function`],
//!   [`BasicBlock`], [`Instr`]) rich enough to express the multithreaded C
//!   programs the paper evaluates (globals, heap, mutexes, thread
//!   create/join, indirect calls, assertions),
//! * per-function control-flow graphs ([`cfg::Cfg`]) with dominator and
//!   postdominator analyses ([`dom`]) used by Gist's instrumentation
//!   planner (paper §3.2.2–§3.2.3),
//! * the interprocedural and *thread* interprocedural control-flow graphs
//!   ([`icfg::Icfg`], [`icfg::Ticfg`]) used by the static backward slicer
//!   (paper §3.1),
//! * a line-oriented textual format ([`parser`], [`printer`]) so that bug
//!   programs can be written as `.gir` sources, and
//! * a [`builder`] API for constructing programs from Rust code.
//!
//! # Examples
//!
//! ```
//! use gist_ir::builder::ProgramBuilder;
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let mut f = pb.function("main", &[]);
//! let x = f.const_i64("x", 41);
//! let one = f.const_i64("one", 1);
//! let y = f.add("y", x.into(), one.into());
//! f.print(&[y.into()]);
//! f.ret(None);
//! f.finish();
//! let program = pb.finish().expect("valid program");
//! assert_eq!(program.functions.len(), 1);
//! ```

pub mod builder;
pub mod cfg;
pub mod dom;
pub mod icfg;
pub mod instr;
pub mod parser;
pub mod printer;
pub mod program;
pub mod srcmap;
pub mod types;

pub use instr::{BinKind, Callee, CmpKind, Instr, IntrinsicKind, Op, Operand, Terminator};
pub use program::{BasicBlock, Function, Global, Program, ValidationError};
pub use srcmap::{SourceMap, SrcLoc};
pub use types::{BlockId, FileId, FuncId, GlobalId, InstrId, Value, VarId};
