//! Per-function control-flow graphs.

use crate::program::Function;
use crate::types::BlockId;

/// The control-flow graph of one function: predecessor and successor lists
/// plus traversal orders. Block indices match [`Function::blocks`].
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Blocks in reverse postorder from the entry.
    pub rpo: Vec<BlockId>,
    /// Blocks with no successors (return / unreachable blocks).
    pub exits: Vec<BlockId>,
    /// `reachable[b]` is true if `b` is reachable from the entry.
    pub reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of a function.
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for b in &f.blocks {
            for s in b.term.successors() {
                succs[b.id.index()].push(s);
                preds[s.index()].push(b.id);
            }
        }
        let exits = f
            .blocks
            .iter()
            .filter(|b| b.term.successors().is_empty())
            .map(|b| b.id)
            .collect();

        // Postorder DFS from the entry.
        let mut reachable = vec![false; n];
        let mut post = Vec::with_capacity(n);
        if n > 0 {
            // Iterative DFS carrying an explicit child cursor.
            let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
            reachable[0] = true;
            while let Some(&mut (b, ref mut cursor)) = stack.last_mut() {
                if *cursor < succs[b.index()].len() {
                    let child = succs[b.index()][*cursor];
                    *cursor += 1;
                    if !reachable[child.index()] {
                        reachable[child.index()] = true;
                        stack.push((child, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        Cfg {
            succs,
            preds,
            rpo: post,
            exits,
            reachable,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The position of each block in reverse postorder (unreachable blocks
    /// get `usize::MAX`).
    pub fn rpo_index(&self) -> Vec<usize> {
        let mut idx = vec![usize::MAX; self.len()];
        for (i, b) in self.rpo.iter().enumerate() {
            idx[b.index()] = i;
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpKind;
    use crate::program::Program;

    /// diamond: entry -> (then|else) -> exit
    fn diamond() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let c = f.const_i64("c", 1);
        let then_bb = f.new_block("then");
        let else_bb = f.new_block("else");
        let exit = f.new_block("exit");
        f.condbr(c.into(), then_bb, else_bb);
        f.switch_to(then_bb);
        f.br(exit);
        f.switch_to(else_bb);
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn diamond_preds_succs() {
        let p = diamond();
        let cfg = Cfg::build(&p.functions[0]);
        assert_eq!(cfg.succs[0].len(), 2);
        assert_eq!(cfg.preds[3].len(), 2);
        assert_eq!(cfg.preds[0].len(), 0);
        assert_eq!(cfg.exits, vec![BlockId(3)]);
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let p = diamond();
        let cfg = Cfg::build(&p.functions[0]);
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
        // RPO property for acyclic graphs: every edge goes forward.
        let idx = cfg.rpo_index();
        for (b, ss) in cfg.succs.iter().enumerate() {
            for s in ss {
                assert!(idx[b] < idx[s.index()], "edge bb{b}->{s} not forward");
            }
        }
    }

    #[test]
    fn unreachable_block_detected() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let dead = f.new_block("dead");
        f.ret(None);
        f.switch_to(dead);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        assert!(cfg.reachable[0]);
        assert!(!cfg.reachable[1]);
        assert_eq!(cfg.rpo.len(), 1);
    }

    #[test]
    fn loop_has_back_edge_pred() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.global("n", 5);
        let mut f = pb.function("main", &[]);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(head);
        f.switch_to(head);
        let v = f.load("v", g.into());
        let c = f.cmp("c", CmpKind::Gt, v.into(), 0.into());
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        f.br(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        // head has two preds: entry and body (the back edge).
        assert_eq!(cfg.preds[1].len(), 2);
    }
}
