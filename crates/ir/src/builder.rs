//! A fluent builder API for constructing MiniC programs from Rust.
//!
//! The builder is how the evaluation bug programs and the unit tests
//! construct IR without going through the text parser.

use std::collections::HashMap;

use crate::instr::{BinKind, Callee, CmpKind, Instr, IntrinsicKind, Op, Operand, Terminator};
use crate::program::{BasicBlock, Function, Global, Program, ValidationError};
use crate::srcmap::SrcLoc;
use crate::types::{BlockId, FuncId, GlobalId, InstrId, Value, VarId};

/// Builds a [`Program`].
pub struct ProgramBuilder {
    program: Program,
    func_names: HashMap<String, FuncId>,
    /// Forward-declared functions not yet defined.
    pending: Vec<FuncId>,
}

impl ProgramBuilder {
    /// Creates a builder for a program called `name`.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            program: Program::empty(name),
            func_names: HashMap::new(),
            pending: Vec::new(),
        }
    }

    /// Declares (or finds) a global scalar with an initial value.
    pub fn global(&mut self, name: &str, init: Value) -> GlobalId {
        self.global_array(name, 1, vec![init])
    }

    /// Declares (or finds) a global array of `size` cells.
    pub fn global_array(&mut self, name: &str, size: u32, init: Vec<Value>) -> GlobalId {
        if let Some(g) = self.program.globals.iter().find(|g| g.name == name) {
            return g.id;
        }
        let id = GlobalId(self.program.globals.len() as u32);
        self.program.globals.push(Global {
            id,
            name: name.to_owned(),
            size,
            init,
            loc: SrcLoc::UNKNOWN,
        });
        id
    }

    /// Interns a source file name in the program's source map.
    pub fn file(&mut self, name: &str) -> crate::types::FileId {
        self.program.source_map.intern_file(name)
    }

    /// Registers original source text for a line (used in sketch rendering).
    pub fn line_text(&mut self, loc: SrcLoc, text: &str) {
        self.program.source_map.set_line_text(loc, text);
    }

    /// Forward-declares a function so mutually recursive code can be built.
    pub fn declare(&mut self, name: &str, params: &[&str]) -> FuncId {
        if let Some(&id) = self.func_names.get(name) {
            return id;
        }
        let id = FuncId(self.program.functions.len() as u32);
        self.func_names.insert(name.to_owned(), id);
        self.program.functions.push(Function {
            id,
            name: name.to_owned(),
            params: (0..params.len() as u32).map(VarId).collect(),
            var_names: params.iter().map(|s| (*s).to_owned()).collect(),
            blocks: Vec::new(),
            loc: SrcLoc::UNKNOWN,
        });
        self.pending.push(id);
        id
    }

    /// Starts building a function body. The function is created (or the
    /// forward declaration is completed) and a [`FunctionBuilder`] is
    /// returned positioned at a fresh entry block.
    pub fn function<'a>(&'a mut self, name: &str, params: &[&str]) -> FunctionBuilder<'a> {
        let id = self.declare(name, params);
        self.pending.retain(|&p| p != id);
        FunctionBuilder::new(self, id)
    }

    /// Finishes the program: finalizes statement ids and validates.
    pub fn finish(mut self) -> Result<Program, Vec<ValidationError>> {
        // The entry point is the function named `main`, wherever it was
        // declared — not function 0. (The parser has always resolved the
        // entry by name; the builder used to leave `entry` at the default
        // `FuncId(0)`, so any built program that defined a worker routine
        // before `main` started execution in the worker instead.)
        if let Some(&main) = self.func_names.get("main") {
            self.program.entry = main;
        }
        // Give any still-pending declarations a trivial body so validation
        // treats calls to them as arity-checked no-ops.
        for id in std::mem::take(&mut self.pending) {
            let f = &mut self.program.functions[id.index()];
            if f.blocks.is_empty() {
                f.blocks.push(BasicBlock {
                    id: BlockId(0),
                    label: "entry".to_owned(),
                    instrs: Vec::new(),
                    term: Terminator::Ret {
                        id: InstrId(0),
                        value: None,
                        loc: SrcLoc::UNKNOWN,
                    },
                });
            }
        }
        self.program.finalize();
        self.program.validate()?;
        Ok(self.program)
    }

    /// Access the program under construction (for tests).
    pub fn program_mut(&mut self) -> &mut Program {
        &mut self.program
    }
}

/// Builds one function's body. Obtained from [`ProgramBuilder::function`].
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    func: FuncId,
    current: BlockId,
    /// Current source location applied to emitted statements.
    loc: SrcLoc,
    /// Blocks that still need a terminator, with their instruction lists.
    open: HashMap<BlockId, Vec<Instr>>,
    /// Finished blocks.
    done: HashMap<BlockId, BasicBlock>,
    labels: Vec<String>,
    var_names: HashMap<String, VarId>,
}

impl<'a> FunctionBuilder<'a> {
    fn new(pb: &'a mut ProgramBuilder, func: FuncId) -> Self {
        let f = &pb.program.functions[func.index()];
        let var_names = f
            .var_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), VarId(i as u32)))
            .collect();
        let mut b = FunctionBuilder {
            pb,
            func,
            current: BlockId(0),
            loc: SrcLoc::UNKNOWN,
            open: HashMap::new(),
            done: HashMap::new(),
            labels: vec!["entry".to_owned()],
            var_names,
        };
        b.open.insert(BlockId(0), Vec::new());
        b
    }

    /// The function being built.
    pub fn id(&self) -> FuncId {
        self.func
    }

    /// Sets the source location applied to subsequently emitted statements.
    pub fn at(&mut self, loc: SrcLoc) -> &mut Self {
        self.loc = loc;
        self
    }

    /// Sets the source location from a file id and line.
    pub fn at_line(&mut self, file: crate::types::FileId, line: u32) -> &mut Self {
        self.loc = SrcLoc::new(file, line);
        self
    }

    /// Returns (creating if needed) the register named `name`.
    pub fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.var_names.get(name) {
            return v;
        }
        let f = &mut self.pb.program.functions[self.func.index()];
        let v = VarId(f.var_names.len() as u32);
        f.var_names.push(name.to_owned());
        self.var_names.insert(name.to_owned(), v);
        v
    }

    /// Creates a new (empty, open) block with the given label.
    pub fn new_block(&mut self, label: &str) -> BlockId {
        let id = BlockId(self.labels.len() as u32);
        self.labels.push(label.to_owned());
        self.open.insert(id, Vec::new());
        id
    }

    /// Switches emission to the given open block.
    ///
    /// # Panics
    ///
    /// Panics if the block has already been terminated.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.open.contains_key(&block),
            "block {block} is not open (already terminated?)"
        );
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn emit(&mut self, op: Op) {
        let loc = self.loc;
        self.open
            .get_mut(&self.current)
            .expect("current block is open")
            .push(Instr {
                id: InstrId(0),
                op,
                loc,
            });
    }

    fn terminate(&mut self, term: Terminator) {
        let instrs = self
            .open
            .remove(&self.current)
            .expect("current block is open");
        let id = self.current;
        self.done.insert(
            id,
            BasicBlock {
                id,
                label: self.labels[id.index()].clone(),
                instrs,
                term,
            },
        );
    }

    // ---- instruction emitters -------------------------------------------

    /// `dst = const v`
    pub fn const_i64(&mut self, dst: &str, v: Value) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Const { dst, value: v });
        dst
    }

    /// `dst = <kind> a, b`
    pub fn bin(&mut self, dst: &str, kind: BinKind, a: Operand, b: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Bin { dst, kind, a, b });
        dst
    }

    /// `dst = add a, b`
    pub fn add(&mut self, dst: &str, a: Operand, b: Operand) -> VarId {
        self.bin(dst, BinKind::Add, a, b)
    }

    /// `dst = sub a, b`
    pub fn sub(&mut self, dst: &str, a: Operand, b: Operand) -> VarId {
        self.bin(dst, BinKind::Sub, a, b)
    }

    /// `dst = cmp <kind> a, b`
    pub fn cmp(&mut self, dst: &str, kind: CmpKind, a: Operand, b: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Cmp { dst, kind, a, b });
        dst
    }

    /// `dst = load addr`
    pub fn load(&mut self, dst: &str, addr: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Load { dst, addr });
        dst
    }

    /// `store addr, value`
    pub fn store(&mut self, addr: Operand, value: Operand) {
        self.emit(Op::Store { addr, value });
    }

    /// `dst = gep base, offset`
    pub fn gep(&mut self, dst: &str, base: Operand, offset: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Gep { dst, base, offset });
        dst
    }

    /// `dst = alloc size`
    pub fn alloc(&mut self, dst: &str, size: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::Alloc { dst, size });
        dst
    }

    /// `free addr`
    pub fn free(&mut self, addr: Operand) {
        self.emit(Op::Free { addr });
    }

    /// `dst = stackalloc size`
    pub fn stack_alloc(&mut self, dst: &str, size: Operand) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::StackAlloc { dst, size });
        dst
    }

    /// `dst? = call callee(args...)`
    pub fn call(&mut self, dst: Option<&str>, callee: Callee, args: &[Operand]) -> Option<VarId> {
        let dst = dst.map(|d| self.var(d));
        self.emit(Op::Call {
            dst,
            callee,
            args: args.to_vec(),
        });
        dst
    }

    /// `dst = call f(args...)` by function id, returning the value.
    pub fn call_direct(&mut self, dst: &str, f: FuncId, args: &[Operand]) -> VarId {
        self.call(Some(dst), Callee::Direct(f), args)
            .expect("dst provided")
    }

    /// `call f(args...)` discarding any return value.
    pub fn call_void(&mut self, f: FuncId, args: &[Operand]) {
        self.call(None, Callee::Direct(f), args);
    }

    /// `dst = funcaddr f`
    pub fn func_addr(&mut self, dst: &str, f: FuncId) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::FuncAddr { dst, func: f });
        dst
    }

    /// `tid = spawn f(arg)`
    pub fn spawn(&mut self, dst: Option<&str>, routine: Callee, arg: Operand) -> Option<VarId> {
        let dst = dst.map(|d| self.var(d));
        self.emit(Op::ThreadCreate { dst, routine, arg });
        dst
    }

    /// `join tid`
    pub fn join(&mut self, tid: Operand) {
        self.emit(Op::ThreadJoin { tid });
    }

    /// `lock addr`
    pub fn lock(&mut self, addr: Operand) {
        self.emit(Op::MutexLock { addr });
    }

    /// `unlock addr`
    pub fn unlock(&mut self, addr: Operand) {
        self.emit(Op::MutexUnlock { addr });
    }

    /// `assert cond, msg`
    pub fn assert(&mut self, cond: Operand, msg: &str) {
        self.emit(Op::Assert {
            cond,
            msg: msg.to_owned(),
        });
    }

    /// `print args...`
    pub fn print(&mut self, args: &[Operand]) {
        self.emit(Op::Print {
            args: args.to_vec(),
        });
    }

    /// `dst? = <intrinsic>(args...)`
    pub fn intrinsic(
        &mut self,
        dst: Option<&str>,
        kind: IntrinsicKind,
        args: &[Operand],
    ) -> Option<VarId> {
        let dst = dst.map(|d| self.var(d));
        self.emit(Op::Intrinsic {
            dst,
            kind,
            args: args.to_vec(),
        });
        dst
    }

    /// `dst = input n` — reads the n-th workload input.
    pub fn read_input(&mut self, dst: &str, index: usize) -> VarId {
        let dst = self.var(dst);
        self.emit(Op::ReadInput { dst, index });
        dst
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.emit(Op::Nop);
    }

    // ---- terminators -----------------------------------------------------

    /// `br target`
    pub fn br(&mut self, target: BlockId) {
        let loc = self.loc;
        self.terminate(Terminator::Br {
            id: InstrId(0),
            target,
            loc,
        });
    }

    /// `condbr cond, then, else`
    pub fn condbr(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        let loc = self.loc;
        self.terminate(Terminator::CondBr {
            id: InstrId(0),
            cond,
            then_bb,
            else_bb,
            loc,
        });
    }

    /// `ret v?`
    pub fn ret(&mut self, value: Option<Operand>) {
        let loc = self.loc;
        self.terminate(Terminator::Ret {
            id: InstrId(0),
            value,
            loc,
        });
    }

    /// `unreachable`
    pub fn unreachable(&mut self) {
        let loc = self.loc;
        self.terminate(Terminator::Unreachable {
            id: InstrId(0),
            loc,
        });
    }

    /// Completes the function, installing its blocks into the program.
    ///
    /// # Panics
    ///
    /// Panics if any created block was left without a terminator.
    pub fn finish(self) -> FuncId {
        assert!(
            self.open.is_empty(),
            "function {} has unterminated blocks: {:?}",
            self.pb.program.functions[self.func.index()].name,
            self.open.keys().collect::<Vec<_>>()
        );
        let mut blocks: Vec<BasicBlock> = self.done.into_values().collect();
        blocks.sort_by_key(|b| b.id);
        let f = &mut self.pb.program.functions[self.func.index()];
        f.blocks = blocks;
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straightline_function() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let a = f.const_i64("a", 2);
        let b = f.const_i64("b", 3);
        let c = f.add("c", a.into(), b.into());
        f.print(&[c.into()]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].blocks.len(), 1);
        assert_eq!(p.functions[0].blocks[0].instrs.len(), 4);
    }

    #[test]
    fn params_are_first_vars() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("g", &["x", "y"]);
        let x = f.var("x");
        let y = f.var("y");
        assert_eq!(x, VarId(0));
        assert_eq!(y, VarId(1));
        let z = f.var("z");
        assert_eq!(z, VarId(2));
        f.ret(Some(z.into()));
        f.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.functions[0].params, vec![VarId(0), VarId(1)]);
    }

    #[test]
    fn forward_declaration_allows_mutual_calls() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.declare("g", &["n"]);
        let mut f = pb.function("main", &[]);
        let one = f.const_i64("one", 1);
        f.call(Some("r"), Callee::Direct(g), &[one.into()]);
        f.ret(None);
        f.finish();
        let mut gb = pb.function("g", &["n"]);
        let n = gb.var("n");
        gb.ret(Some(n.into()));
        gb.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn pending_declaration_gets_stub_body() {
        let mut pb = ProgramBuilder::new("t");
        let g = pb.declare("g", &[]);
        let mut f = pb.function("main", &[]);
        f.call(None, Callee::Direct(g), &[]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.functions[g.index()].blocks.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn unterminated_block_panics() {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        f.const_i64("a", 1);
        f.finish();
    }

    #[test]
    fn entry_is_main_even_when_declared_after_workers() {
        // Regression: the synthetic-bugbase generator emits worker
        // routines before `main`; the builder used to leave the entry at
        // function 0, silently running the first worker as the program.
        let mut pb = ProgramBuilder::new("t");
        let mut w = pb.function("worker", &["x"]);
        w.ret(None);
        w.finish();
        let mut m = pb.function("main", &[]);
        m.ret(None);
        m.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.entry, p.function_by_name("main").unwrap().id);
    }

    #[test]
    fn globals_are_deduped() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.global("head", 7);
        let b = pb.global("head", 9);
        assert_eq!(a, b);
        let mut f = pb.function("main", &[]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        assert_eq!(p.globals.len(), 1);
        assert_eq!(p.globals[0].init, vec![7]);
    }

    #[test]
    fn loop_shape() {
        let mut pb = ProgramBuilder::new("t");
        let n = pb.global("n", 3);
        let mut f = pb.function("main", &[]);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(head);
        f.switch_to(head);
        let cur = f.load("cur", n.into());
        let c = f.cmp("c", CmpKind::Gt, cur.into(), 0.into());
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        let dec = f.sub("dec", cur.into(), 1.into());
        f.store(n.into(), dec.into());
        f.br(head);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let main = p.function_by_name("main").unwrap();
        assert_eq!(main.blocks.len(), 4);
        // Entry must be block 0.
        assert_eq!(main.blocks[0].id, BlockId(0));
    }
}
