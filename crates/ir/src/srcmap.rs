//! Source locations and the program source map.
//!
//! Gist reports failure sketches in terms of *source* statements (paper
//! Table 1 reports slice sizes both in source LOC and in LLVM instructions).
//! MiniC mirrors this: every IR statement carries a [`SrcLoc`], and the
//! [`SourceMap`] can optionally store the original source line text so the
//! sketch renderer can show C-like statements, as in the paper's Figs 1/7/8.

use std::collections::BTreeMap;
use std::fmt;

use crate::types::FileId;

/// A `file:line` source position attached to an IR statement.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SrcLoc {
    /// The source file.
    pub file: FileId,
    /// The 1-based line number; 0 means "unknown".
    pub line: u32,
}

impl SrcLoc {
    /// A location with no source information.
    pub const UNKNOWN: SrcLoc = SrcLoc {
        file: FileId(0),
        line: 0,
    };

    /// Creates a new location.
    pub fn new(file: FileId, line: u32) -> Self {
        SrcLoc { file, line }
    }

    /// Returns true if this is the unknown location.
    pub fn is_unknown(self) -> bool {
        self.line == 0
    }
}

/// Interns file names and (optionally) per-line source text.
#[derive(Clone, Debug, Default)]
pub struct SourceMap {
    files: Vec<String>,
    /// Original source text per (file, line), used for sketch rendering.
    lines: BTreeMap<(FileId, u32), String>,
}

impl SourceMap {
    /// Creates an empty source map. File id 0 is reserved for `<unknown>`.
    pub fn new() -> Self {
        SourceMap {
            files: vec!["<unknown>".to_owned()],
            lines: BTreeMap::new(),
        }
    }

    /// Interns a file name, returning its id. Idempotent.
    pub fn intern_file(&mut self, name: &str) -> FileId {
        if let Some(pos) = self.files.iter().position(|f| f == name) {
            return FileId(pos as u32);
        }
        self.files.push(name.to_owned());
        FileId((self.files.len() - 1) as u32)
    }

    /// Looks up a file name by id.
    pub fn file_name(&self, id: FileId) -> &str {
        self.files
            .get(id.index())
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Returns the id for a file name if it was interned.
    pub fn find_file(&self, name: &str) -> Option<FileId> {
        self.files
            .iter()
            .position(|f| f == name)
            .map(|p| FileId(p as u32))
    }

    /// Registers the original source text of a line (for sketch rendering).
    pub fn set_line_text(&mut self, loc: SrcLoc, text: impl Into<String>) {
        self.lines.insert((loc.file, loc.line), text.into());
    }

    /// Returns the registered source text of a line, if any.
    pub fn line_text(&self, loc: SrcLoc) -> Option<&str> {
        self.lines.get(&(loc.file, loc.line)).map(String::as_str)
    }

    /// Formats a location as `file:line`.
    pub fn display(&self, loc: SrcLoc) -> String {
        if loc.is_unknown() {
            "<unknown>".to_owned()
        } else {
            format!("{}:{}", self.file_name(loc.file), loc.line)
        }
    }

    /// Number of interned files (including `<unknown>`).
    pub fn file_count(&self) -> usize {
        self.files.len()
    }
}

impl fmt::Display for SrcLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unknown() {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.file, self.line)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut sm = SourceMap::new();
        let a = sm.intern_file("pbzip2.c");
        let b = sm.intern_file("pbzip2.c");
        assert_eq!(a, b);
        assert_eq!(sm.file_name(a), "pbzip2.c");
        assert_eq!(sm.file_count(), 2);
    }

    #[test]
    fn unknown_location() {
        let sm = SourceMap::new();
        assert!(SrcLoc::UNKNOWN.is_unknown());
        assert_eq!(sm.display(SrcLoc::UNKNOWN), "<unknown>");
    }

    #[test]
    fn line_text_roundtrip() {
        let mut sm = SourceMap::new();
        let f = sm.intern_file("main.c");
        let loc = SrcLoc::new(f, 12);
        sm.set_line_text(loc, "free(f->mut);");
        assert_eq!(sm.line_text(loc), Some("free(f->mut);"));
        assert_eq!(sm.line_text(SrcLoc::new(f, 13)), None);
        assert_eq!(sm.display(loc), "main.c:12");
    }

    #[test]
    fn find_file_only_finds_interned() {
        let mut sm = SourceMap::new();
        sm.intern_file("a.c");
        assert!(sm.find_file("a.c").is_some());
        assert!(sm.find_file("b.c").is_none());
    }
}
