//! Pretty-printer for the MiniC textual format.
//!
//! The printer produces text that the [`crate::parser`] accepts, so programs
//! round-trip. Register and global names come from the program; ids are not
//! printed (they are reassigned on parse).

use std::fmt::{self, Write as _};

use crate::instr::{Callee, Op, Operand, Terminator};
use crate::program::{Function, Program};
use crate::srcmap::SrcLoc;

/// Prints a whole program in textual form.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; program {}", p.name);
    for g in &p.globals {
        if g.size == 1 {
            let init = g.init.first().copied().unwrap_or(0);
            let _ = writeln!(out, "global {} = {}", g.name, init);
        } else {
            let inits: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "global {}[{}] = [{}]",
                g.name,
                g.size,
                inits.join(", ")
            );
        }
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for f in &p.functions {
        print_function(p, f, &mut out);
        out.push('\n');
    }
    out
}

fn print_function(p: &Program, f: &Function, out: &mut String) {
    let params: Vec<&str> = f.params.iter().map(|&v| f.var_name(v)).collect();
    let _ = writeln!(out, "fn {}({}) {{", f.name, params.join(", "));
    for b in &f.blocks {
        let _ = writeln!(out, "{}:", b.label);
        for i in &b.instrs {
            let _ = write!(out, "  {}", OpPrinter { p, f, op: &i.op });
            print_loc(p, i.loc, out);
            out.push('\n');
        }
        let _ = write!(
            out,
            "  {}",
            TermPrinter {
                p,
                f,
                term: &b.term
            }
        );
        print_loc(p, b.term.loc(), out);
        out.push('\n');
    }
    let _ = writeln!(out, "}}");
}

fn print_loc(p: &Program, loc: SrcLoc, out: &mut String) {
    if !loc.is_unknown() {
        let _ = write!(out, " @ {}:{}", p.source_map.file_name(loc.file), loc.line);
    }
}

struct OpPrinter<'a> {
    p: &'a Program,
    f: &'a Function,
    op: &'a Op,
}

struct TermPrinter<'a> {
    p: &'a Program,
    f: &'a Function,
    term: &'a Terminator,
}

fn operand(p: &Program, f: &Function, op: Operand) -> String {
    match op {
        Operand::Var(v) => f.var_name(v).to_owned(),
        Operand::Const(c) => c.to_string(),
        Operand::Global(g) => format!("${}", p.globals[g.index()].name),
    }
}

fn callee(p: &Program, f: &Function, c: &Callee) -> (String, bool) {
    match c {
        Callee::Direct(id) => (p.function(*id).name.clone(), false),
        Callee::Indirect(op) => (operand(p, f, *op), true),
    }
}

impl fmt::Display for OpPrinter<'_> {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = |op: Operand| operand(self.p, self.f, op);
        let v = |var: crate::types::VarId| self.f.var_name(var).to_owned();
        match self.op {
            Op::Const { dst, value } => write!(w, "{} = const {}", v(*dst), value),
            Op::Bin { dst, kind, a, b } => {
                write!(w, "{} = {} {}, {}", v(*dst), kind.mnemonic(), o(*a), o(*b))
            }
            Op::Cmp { dst, kind, a, b } => write!(
                w,
                "{} = cmp {} {}, {}",
                v(*dst),
                kind.mnemonic(),
                o(*a),
                o(*b)
            ),
            Op::Load { dst, addr } => write!(w, "{} = load {}", v(*dst), o(*addr)),
            Op::Store { addr, value } => write!(w, "store {}, {}", o(*addr), o(*value)),
            Op::Gep { dst, base, offset } => {
                write!(w, "{} = gep {}, {}", v(*dst), o(*base), o(*offset))
            }
            Op::Alloc { dst, size } => write!(w, "{} = alloc {}", v(*dst), o(*size)),
            Op::Free { addr } => write!(w, "free {}", o(*addr)),
            Op::StackAlloc { dst, size } => {
                write!(w, "{} = stackalloc {}", v(*dst), o(*size))
            }
            Op::Call {
                dst,
                callee: c,
                args,
            } => {
                let (name, indirect) = callee(self.p, self.f, c);
                let kw = if indirect { "icall" } else { "call" };
                if let Some(d) = dst {
                    write!(w, "{} = {} {}(", v(*d), kw, name)?;
                } else {
                    write!(w, "{} {}(", kw, name)?;
                }
                let args: Vec<String> = args.iter().map(|&a| o(a)).collect();
                write!(w, "{})", args.join(", "))
            }
            Op::FuncAddr { dst, func } => {
                write!(w, "{} = funcaddr {}", v(*dst), self.p.function(*func).name)
            }
            Op::ThreadCreate { dst, routine, arg } => {
                let (name, _) = callee(self.p, self.f, routine);
                if let Some(d) = dst {
                    write!(w, "{} = spawn {}({})", v(*d), name, o(*arg))
                } else {
                    write!(w, "spawn {}({})", name, o(*arg))
                }
            }
            Op::ThreadJoin { tid } => write!(w, "join {}", o(*tid)),
            Op::MutexLock { addr } => write!(w, "lock {}", o(*addr)),
            Op::MutexUnlock { addr } => write!(w, "unlock {}", o(*addr)),
            Op::Assert { cond, msg } => write!(w, "assert {}, \"{}\"", o(*cond), msg),
            Op::Print { args } => {
                let args: Vec<String> = args.iter().map(|&a| o(a)).collect();
                write!(w, "print {}", args.join(", "))
            }
            Op::Intrinsic { dst, kind, args } => {
                let args_s: Vec<String> = args.iter().map(|&a| o(a)).collect();
                if let Some(d) = dst {
                    write!(w, "{} = {} {}", v(*d), kind.mnemonic(), args_s.join(", "))
                } else {
                    write!(w, "{} {}", kind.mnemonic(), args_s.join(", "))
                }
            }
            Op::ReadInput { dst, index } => write!(w, "{} = input {}", v(*dst), index),
            Op::Nop => write!(w, "nop"),
        }
    }
}

impl fmt::Display for TermPrinter<'_> {
    fn fmt(&self, w: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = |op: Operand| operand(self.p, self.f, op);
        match self.term {
            Terminator::Br { target, .. } => {
                write!(w, "br {}", self.f.block(*target).label)
            }
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
                ..
            } => write!(
                w,
                "condbr {}, {}, {}",
                o(*cond),
                self.f.block(*then_bb).label,
                self.f.block(*else_bb).label
            ),
            Terminator::Ret { value, .. } => match value {
                Some(val) => write!(w, "ret {}", o(*val)),
                None => write!(w, "ret"),
            },
            Terminator::Unreachable { .. } => write!(w, "unreachable"),
        }
    }
}

/// Renders a single statement (instruction or terminator) as text —
/// used by the sketch renderer when no original source text is registered.
pub fn stmt_to_string(p: &Program, id: crate::types::InstrId) -> String {
    if let Some(pos) = p.stmt_pos(id) {
        let f = p.function(pos.func);
        let b = f.block(pos.block);
        if pos.index < b.instrs.len() {
            return format!(
                "{}",
                OpPrinter {
                    p,
                    f,
                    op: &b.instrs[pos.index].op
                }
            );
        }
        return format!(
            "{}",
            TermPrinter {
                p,
                f,
                term: &b.term
            }
        );
    }
    format!("<unknown stmt {id}>")
}

/// `fmt::Display` hook used by `Op`'s Display impl (names unavailable there,
/// so this prints ids).
pub(crate) fn fmt_op(op: &Op, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    // Fallback display without a program context: debug-ish but stable.
    match op {
        Op::Const { dst, value } => write!(f, "{dst} = const {value}"),
        other => write!(f, "{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::instr::CmpKind;

    #[test]
    fn prints_function_with_blocks() {
        let mut pb = ProgramBuilder::new("demo");
        let g = pb.global("count", 0);
        let mut f = pb.function("main", &[]);
        let exit = f.new_block("exit");
        let v = f.load("v", g.into());
        let c = f.cmp("c", CmpKind::Gt, v.into(), 0.into());
        let body = f.new_block("body");
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        f.store(g.into(), 0.into());
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let text = print_program(&p);
        assert!(text.contains("global count = 0"));
        assert!(text.contains("fn main() {"));
        assert!(text.contains("v = load $count"));
        assert!(text.contains("condbr c, body, exit"));
        assert!(text.contains("store $count, 0"));
    }

    #[test]
    fn stmt_to_string_renders_terminators() {
        let mut pb = ProgramBuilder::new("demo");
        let mut f = pb.function("main", &[]);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let ret_id = p.functions[0].blocks[0].term.id();
        assert_eq!(stmt_to_string(&p, ret_id), "ret");
    }

    #[test]
    fn prints_source_locations() {
        let mut pb = ProgramBuilder::new("demo");
        let file = pb.file("main.c");
        let mut f = pb.function("main", &[]);
        f.at_line(file, 42);
        f.const_i64("x", 1);
        f.ret(None);
        f.finish();
        let p = pb.finish().unwrap();
        let text = print_program(&p);
        assert!(text.contains("x = const 1 @ main.c:42"), "{text}");
    }
}
