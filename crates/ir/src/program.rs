//! Programs, functions, basic blocks, globals, and validation.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{Callee, Instr, Op, Operand, Terminator};
use crate::srcmap::{SourceMap, SrcLoc};
use crate::types::{BlockId, FuncId, GlobalId, InstrId, Value, VarId};

/// A global variable. Globals live at fixed addresses in the VM's data
/// segment and are the canonical "shared variables" of the paper's
/// concurrency bugs.
#[derive(Clone, Debug)]
pub struct Global {
    /// Identifier.
    pub id: GlobalId,
    /// Name as written in the source.
    pub name: String,
    /// Number of cells this global occupies (1 for scalars).
    pub size: u32,
    /// Initial value for each cell (cells beyond `init.len()` start at 0).
    pub init: Vec<Value>,
    /// Source attribution.
    pub loc: SrcLoc,
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Identifier (index within the function).
    pub id: BlockId,
    /// Optional label from the text format.
    pub label: String,
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// The terminator.
    pub term: Terminator,
}

impl BasicBlock {
    /// All statement ids in this block, instructions then terminator.
    pub fn stmt_ids(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.instrs
            .iter()
            .map(|i| i.id)
            .chain(std::iter::once(self.term.id()))
    }
}

/// A function: named parameters, local registers, and a CFG of basic blocks.
#[derive(Clone, Debug)]
pub struct Function {
    /// Identifier.
    pub id: FuncId,
    /// Name as written in the source.
    pub name: String,
    /// Parameter registers (prefix of the register space).
    pub params: Vec<VarId>,
    /// Names of all registers, indexed by [`VarId`].
    pub var_names: Vec<String>,
    /// Basic blocks; `blocks[0]` is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// Source attribution of the definition.
    pub loc: SrcLoc,
}

impl Function {
    /// The entry block id (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Number of registers.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The name of a register.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.var_names[v.index()]
    }

    /// Iterates over all statement ids in the function in block order.
    pub fn stmt_ids(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.blocks.iter().flat_map(|b| b.stmt_ids())
    }
}

/// Where a statement lives: function, block, and position.
///
/// `index == block.instrs.len()` denotes the terminator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StmtPos {
    /// Containing function.
    pub func: FuncId,
    /// Containing block.
    pub block: BlockId,
    /// Index within the block (`instrs.len()` = terminator).
    pub index: usize,
}

/// A whole MiniC program.
#[derive(Clone, Debug)]
pub struct Program {
    /// Program name (used in reports and sketches).
    pub name: String,
    /// All functions. `functions[entry.index()]` is the entry point.
    pub functions: Vec<Function>,
    /// The entry function (conventionally `main`).
    pub entry: FuncId,
    /// Global variables.
    pub globals: Vec<Global>,
    /// Source map (file names + optional line text).
    pub source_map: SourceMap,
    /// Statement index: position of statement `i` at index `i`. Statement
    /// ids are dense (`0..stmt_count`) after [`Program::finalize`], so a
    /// flat vector replaces a hash map on the decode/execute hot path.
    stmt_index: Vec<StmtPos>,
    /// Total number of statements (instrs + terminators).
    stmt_count: u32,
    /// Structural fingerprint, recomputed by [`Program::finalize`].
    fingerprint: u64,
}

/// Errors found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// The entry function id is out of range.
    BadEntry,
    /// A function has no blocks.
    EmptyFunction(FuncId),
    /// A branch target is out of range.
    BadBlockTarget {
        /// Function containing the branch.
        func: FuncId,
        /// The bad target.
        target: BlockId,
    },
    /// An operand references a register that doesn't exist.
    BadVar {
        /// Function containing the use.
        func: FuncId,
        /// The bad register.
        var: VarId,
    },
    /// An operand references a global that doesn't exist.
    BadGlobal(GlobalId),
    /// A call references a function that doesn't exist.
    BadCallee {
        /// Function containing the call.
        func: FuncId,
        /// The bad target.
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments to a direct callee.
    ArityMismatch {
        /// Function containing the call.
        func: FuncId,
        /// The callee.
        callee: FuncId,
        /// Arguments passed.
        got: usize,
        /// Parameters expected.
        want: usize,
    },
    /// Duplicate statement id (indicates a finalize bug).
    DuplicateStmtId(InstrId),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadEntry => write!(f, "entry function id out of range"),
            ValidationError::EmptyFunction(id) => write!(f, "function {id} has no blocks"),
            ValidationError::BadBlockTarget { func, target } => {
                write!(f, "branch in {func} targets nonexistent block {target}")
            }
            ValidationError::BadVar { func, var } => {
                write!(f, "use of nonexistent register {var} in {func}")
            }
            ValidationError::BadGlobal(g) => write!(f, "use of nonexistent global {g}"),
            ValidationError::BadCallee { func, callee } => {
                write!(f, "call in {func} targets nonexistent function {callee}")
            }
            ValidationError::ArityMismatch {
                func,
                callee,
                got,
                want,
            } => write!(
                f,
                "call in {func} passes {got} args to {callee} which expects {want}"
            ),
            ValidationError::DuplicateStmtId(id) => write!(f, "duplicate statement id {id}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Function addresses produced by [`Op::FuncAddr`] are
    /// `FUNC_ADDR_BASE + func.index()`; the VM decodes indirect call targets
    /// by subtracting this base. The base is far above any data address.
    pub const FUNC_ADDR_BASE: Value = 0x4000_0000_0000;

    /// Creates an empty program (used by the builder and parser).
    pub fn empty(name: &str) -> Self {
        Program {
            name: name.to_owned(),
            functions: Vec::new(),
            entry: FuncId(0),
            globals: Vec::new(),
            source_map: SourceMap::new(),
            stmt_index: Vec::new(),
            stmt_count: 0,
            fingerprint: 0,
        }
    }

    /// Assigns program-wide unique statement ids and rebuilds the statement
    /// index. Must be called after construction and after any structural
    /// mutation; the builder and parser call it for you.
    pub fn finalize(&mut self) {
        let mut next: u32 = 0;
        self.stmt_index.clear();
        for f in &mut self.functions {
            for b in &mut f.blocks {
                for (i, instr) in b.instrs.iter_mut().enumerate() {
                    instr.id = InstrId(next);
                    self.stmt_index.push(StmtPos {
                        func: f.id,
                        block: b.id,
                        index: i,
                    });
                    next += 1;
                }
                let tid = InstrId(next);
                next += 1;
                match &mut b.term {
                    Terminator::Br { id, .. }
                    | Terminator::CondBr { id, .. }
                    | Terminator::Ret { id, .. }
                    | Terminator::Unreachable { id, .. } => *id = tid,
                }
                self.stmt_index.push(StmtPos {
                    func: f.id,
                    block: b.id,
                    index: b.instrs.len(),
                });
            }
        }
        self.stmt_count = next;
        self.fingerprint = self.compute_fingerprint();
    }

    /// A structural fingerprint of the finalized program, stable for the
    /// process lifetime and across clones.
    ///
    /// Used to key the shared compile cache (`gist-vm`) and to invalidate
    /// the cross-run PT decode cache (`gist-pt`) when a different program's
    /// packets arrive. Covers every instruction, terminator, global, and
    /// the entry point via their debug rendering, so any structural edit
    /// (after re-`finalize`) changes the value with overwhelming
    /// probability.
    ///
    /// Computed once by [`Program::finalize`] and returned from a stored
    /// field here, so it is cheap enough to consult on per-run hot paths.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn compute_fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        use std::hash::{Hash, Hasher};

        struct HashWriter<H>(H);
        impl<H: Hasher> std::fmt::Write for HashWriter<H> {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                self.0.write(s.as_bytes());
                Ok(())
            }
        }

        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.entry.hash(&mut h);
        self.stmt_count.hash(&mut h);
        let mut w = HashWriter(h);
        let _ = write!(w, "{:?}{:?}", self.functions, self.globals);
        w.0.finish()
    }

    /// Total number of statements (instructions plus terminators).
    pub fn stmt_count(&self) -> usize {
        self.stmt_count as usize
    }

    /// Returns the position of a statement.
    pub fn stmt_pos(&self, id: InstrId) -> Option<StmtPos> {
        self.stmt_index.get(id.index()).copied()
    }

    /// Returns the instruction at `id`, or `None` if `id` is a terminator
    /// or unknown.
    pub fn instr(&self, id: InstrId) -> Option<&Instr> {
        let pos = self.stmt_pos(id)?;
        let block = self.functions[pos.func.index()].block(pos.block);
        block.instrs.get(pos.index)
    }

    /// Returns the terminator at `id`, if `id` names one.
    pub fn terminator(&self, id: InstrId) -> Option<&Terminator> {
        let pos = self.stmt_pos(id)?;
        let block = self.functions[pos.func.index()].block(pos.block);
        if pos.index == block.instrs.len() {
            Some(&block.term)
        } else {
            None
        }
    }

    /// The source location of any statement.
    pub fn stmt_loc(&self, id: InstrId) -> Option<SrcLoc> {
        if let Some(i) = self.instr(id) {
            return Some(i.loc);
        }
        self.terminator(id).map(|t| t.loc())
    }

    /// The function containing a statement.
    pub fn stmt_func(&self, id: InstrId) -> Option<FuncId> {
        self.stmt_pos(id).map(|p| p.func)
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Returns the function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Iterates over every statement id in the program.
    pub fn all_stmt_ids(&self) -> impl Iterator<Item = InstrId> + '_ {
        self.functions.iter().flat_map(|f| f.stmt_ids())
    }

    /// Counts the distinct source lines covered by a set of statements —
    /// the "source LOC" unit of the paper's Table 1.
    pub fn source_loc_count<'a>(&self, stmts: impl IntoIterator<Item = &'a InstrId>) -> usize {
        let mut lines: Vec<(u32, u32)> = stmts
            .into_iter()
            .filter_map(|&id| self.stmt_loc(id))
            .filter(|l| !l.is_unknown())
            .map(|l| (l.file.0, l.line))
            .collect();
        lines.sort_unstable();
        lines.dedup();
        lines.len()
    }

    /// Structural validation. Returns all errors found.
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errs = Vec::new();
        if self.entry.index() >= self.functions.len() {
            errs.push(ValidationError::BadEntry);
        }
        let mut seen_ids: HashMap<InstrId, ()> = HashMap::new();
        for f in &self.functions {
            if f.blocks.is_empty() {
                errs.push(ValidationError::EmptyFunction(f.id));
                continue;
            }
            let check_operand = |op: Operand, errs: &mut Vec<ValidationError>| match op {
                Operand::Var(v) => {
                    if v.index() >= f.var_names.len() {
                        errs.push(ValidationError::BadVar { func: f.id, var: v });
                    }
                }
                Operand::Global(g) => {
                    if g.index() >= self.globals.len() {
                        errs.push(ValidationError::BadGlobal(g));
                    }
                }
                Operand::Const(_) => {}
            };
            for b in &f.blocks {
                for instr in &b.instrs {
                    if seen_ids.insert(instr.id, ()).is_some() {
                        errs.push(ValidationError::DuplicateStmtId(instr.id));
                    }
                    if let Some(d) = instr.op.def() {
                        check_operand(Operand::Var(d), &mut errs);
                    }
                    for u in instr.op.uses() {
                        check_operand(u, &mut errs);
                    }
                    let callee = match &instr.op {
                        Op::Call { callee, args, .. } => Some((callee, args.len())),
                        Op::ThreadCreate { routine, .. } => Some((routine, 1)),
                        _ => None,
                    };
                    if let Some((Callee::Direct(target), nargs)) = callee {
                        if target.index() >= self.functions.len() {
                            errs.push(ValidationError::BadCallee {
                                func: f.id,
                                callee: *target,
                            });
                        } else {
                            let want = self.functions[target.index()].params.len();
                            if want != nargs {
                                errs.push(ValidationError::ArityMismatch {
                                    func: f.id,
                                    callee: *target,
                                    got: nargs,
                                    want,
                                });
                            }
                        }
                    }
                    if let Op::FuncAddr { func, .. } = &instr.op {
                        if func.index() >= self.functions.len() {
                            errs.push(ValidationError::BadCallee {
                                func: f.id,
                                callee: *func,
                            });
                        }
                    }
                }
                if seen_ids.insert(b.term.id(), ()).is_some() {
                    errs.push(ValidationError::DuplicateStmtId(b.term.id()));
                }
                for u in b.term.uses() {
                    check_operand(u, &mut errs);
                }
                for t in b.term.successors() {
                    if t.index() >= f.blocks.len() {
                        errs.push(ValidationError::BadBlockTarget {
                            func: f.id,
                            target: t,
                        });
                    }
                }
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn two_block_program() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let c = f.const_i64("c", 1);
        let exit = f.new_block("exit");
        let body = f.new_block("body");
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        f.print(&[c.into()]);
        f.br(exit);
        f.switch_to(exit);
        f.ret(None);
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn finalize_assigns_dense_unique_ids() {
        let p = two_block_program();
        let ids: Vec<_> = p.all_stmt_ids().collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "ids must be unique");
        assert_eq!(p.stmt_count(), ids.len());
        // Dense: ids are exactly 0..n.
        assert_eq!(sorted.first(), Some(&InstrId(0)));
        assert_eq!(sorted.last(), Some(&InstrId((ids.len() - 1) as u32)));
    }

    #[test]
    fn stmt_pos_roundtrip() {
        let p = two_block_program();
        for id in p.all_stmt_ids() {
            let pos = p.stmt_pos(id).expect("indexed");
            let block = p.functions[pos.func.index()].block(pos.block);
            if pos.index == block.instrs.len() {
                assert_eq!(block.term.id(), id);
            } else {
                assert_eq!(block.instrs[pos.index].id, id);
            }
        }
    }

    #[test]
    fn instr_vs_terminator_lookup() {
        let p = two_block_program();
        let mut n_instr = 0;
        let mut n_term = 0;
        for id in p.all_stmt_ids() {
            match (p.instr(id), p.terminator(id)) {
                (Some(_), None) => n_instr += 1,
                (None, Some(_)) => n_term += 1,
                other => panic!("statement is both/neither: {other:?}"),
            }
        }
        assert!(n_instr >= 2);
        assert_eq!(n_term, 3, "three blocks, three terminators");
    }

    #[test]
    fn validate_catches_bad_block_target() {
        let mut p = two_block_program();
        // Corrupt a branch target.
        if let Terminator::Br { target, .. } = &mut p.functions[0].blocks[2].term {
            *target = BlockId(99);
        } else {
            panic!("expected Br");
        }
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::BadBlockTarget { .. })));
    }

    #[test]
    fn validate_catches_arity_mismatch() {
        let mut pb = ProgramBuilder::new("t");
        let callee_id = {
            let mut g = pb.function("g", &["x"]);
            g.ret(None);
            g.finish()
        };
        let mut f = pb.function("main", &[]);
        f.call(None, Callee::Direct(callee_id), &[]);
        f.ret(None);
        f.finish();
        let errs = pb.finish().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ValidationError::ArityMismatch { .. })));
    }

    #[test]
    fn source_loc_count_dedups_lines() {
        let p = two_block_program();
        // All statements share SrcLoc::UNKNOWN here, so count is 0.
        let ids: Vec<_> = p.all_stmt_ids().collect();
        assert_eq!(p.source_loc_count(ids.iter()), 0);
    }

    #[test]
    fn function_lookup_by_name() {
        let p = two_block_program();
        assert!(p.function_by_name("main").is_some());
        assert!(p.function_by_name("nope").is_none());
    }
}
