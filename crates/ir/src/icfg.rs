//! Interprocedural and thread-interprocedural control-flow graphs.
//!
//! The paper (§3.1) builds the program's ICFG by connecting each function's
//! CFG with call and return edges, then augments it with **thread creation
//! and join edges** to obtain the TICFG: "a thread creation edge is akin to
//! a callsite with the thread start routine as the target function". The
//! TICFG overapproximates all dynamic control flow and is what the backward
//! slicer traverses.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{Callee, Op, Terminator};
use crate::program::{Program, StmtPos};
use crate::types::{FuncId, InstrId};

/// An edge kind in the (T)ICFG.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Fallthrough to the next statement in the same block.
    Seq,
    /// Branch edge between blocks of the same function.
    Branch,
    /// Call edge: callsite -> callee entry statement.
    Call,
    /// Return edge: callee `ret` -> statement after the callsite.
    Return,
    /// Thread-creation edge: `spawn` -> routine entry statement.
    ThreadCreate,
    /// Thread-join edge: routine `ret` -> statement after the `join`.
    ThreadJoin,
}

/// A statement-level interprocedural CFG.
///
/// Nodes are [`InstrId`]s (instructions *and* terminators). The graph is
/// stored as forward and backward adjacency lists; the slicer walks the
/// backward lists.
#[derive(Clone, Debug)]
pub struct Icfg {
    /// Forward edges: `succs[stmt] = [(next, kind)]`.
    succs: Vec<Vec<(InstrId, EdgeKind)>>,
    /// Backward edges: `preds[stmt] = [(prev, kind)]`.
    preds: Vec<Vec<(InstrId, EdgeKind)>>,
    /// Per-function CFGs (by function index).
    pub cfgs: Vec<Cfg>,
    /// Per-function dominator trees.
    pub doms: Vec<DomTree>,
    /// Per-function postdominator trees.
    pub pdoms: Vec<DomTree>,
    /// Whether thread edges were added (i.e. this is a TICFG).
    pub with_thread_edges: bool,
    /// For each callsite statement, the possible callee functions.
    pub call_targets: HashMap<InstrId, Vec<FuncId>>,
    /// For each function, its callsites (call or spawn statements).
    pub callers: HashMap<FuncId, Vec<InstrId>>,
}

/// A TICFG is an ICFG with thread-creation/join edges (§3.1).
pub type Ticfg = Icfg;

impl Icfg {
    /// Builds the ICFG without thread edges.
    pub fn build_icfg(program: &Program) -> Icfg {
        Self::build(program, false)
    }

    /// Builds the TICFG (with thread-creation and join edges).
    pub fn build_ticfg(program: &Program) -> Ticfg {
        Self::build(program, true)
    }

    fn build(program: &Program, thread_edges: bool) -> Icfg {
        let n = program.stmt_count();
        let mut g = Icfg {
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            cfgs: program.functions.iter().map(Cfg::build).collect(),
            doms: Vec::new(),
            pdoms: Vec::new(),
            with_thread_edges: thread_edges,
            call_targets: HashMap::new(),
            callers: HashMap::new(),
        };
        g.doms = g.cfgs.iter().map(DomTree::dominators).collect();
        g.pdoms = g.cfgs.iter().map(DomTree::postdominators).collect();

        // Functions whose address is ever taken: conservative indirect
        // call target set, in the spirit of the paper's data structure
        // analysis [35] for resolving pthread_create start routines.
        let mut address_taken: HashSet<FuncId> = HashSet::new();
        for f in &program.functions {
            for b in &f.blocks {
                for i in &b.instrs {
                    if let Op::FuncAddr { func, .. } = &i.op {
                        address_taken.insert(*func);
                    }
                }
            }
        }

        for f in &program.functions {
            for b in &f.blocks {
                // Sequential edges within the block.
                let ids: Vec<InstrId> = b.stmt_ids().collect();
                for w in ids.windows(2) {
                    g.add_edge(w[0], w[1], EdgeKind::Seq);
                }
                // Branch edges to successor block heads.
                let term_id = b.term.id();
                for s in b.term.successors() {
                    let head = first_stmt(program, f.id, s);
                    g.add_edge(term_id, head, EdgeKind::Branch);
                }
                // Call / spawn edges.
                for (idx, i) in b.instrs.iter().enumerate() {
                    let (targets, kind): (Vec<FuncId>, EdgeKind) = match &i.op {
                        Op::Call { callee, .. } => (
                            resolve_callee(callee, &address_taken, program),
                            EdgeKind::Call,
                        ),
                        Op::ThreadCreate { routine, .. } if thread_edges => (
                            resolve_callee(routine, &address_taken, program),
                            EdgeKind::ThreadCreate,
                        ),
                        _ => continue,
                    };
                    g.call_targets.insert(i.id, targets.clone());
                    for target in targets {
                        g.callers.entry(target).or_default().push(i.id);
                        let entry_stmt =
                            first_stmt(program, target, program.function(target).entry());
                        g.add_edge(i.id, entry_stmt, kind);
                        // Return / join edges from each ret of the callee
                        // back to the statement after the callsite.
                        let after = stmt_after(program, f.id, b.id, idx);
                        let ret_kind = if kind == EdgeKind::ThreadCreate {
                            EdgeKind::ThreadJoin
                        } else {
                            EdgeKind::Return
                        };
                        for ret in rets_of(program, target) {
                            g.add_edge(ret, after, ret_kind);
                        }
                    }
                }
            }
        }
        g
    }

    fn add_edge(&mut self, from: InstrId, to: InstrId, kind: EdgeKind) {
        self.succs[from.index()].push((to, kind));
        self.preds[to.index()].push((from, kind));
    }

    /// Forward neighbors of a statement.
    pub fn succs(&self, id: InstrId) -> &[(InstrId, EdgeKind)] {
        &self.succs[id.index()]
    }

    /// Backward neighbors of a statement.
    pub fn preds(&self, id: InstrId) -> &[(InstrId, EdgeKind)] {
        &self.preds[id.index()]
    }

    /// Statements in backward breadth-first order from `start` (inclusive).
    ///
    /// This is the traversal order of the flow-sensitive backward slicer:
    /// statements nearer the failure come first, which is also the order AsT
    /// extends its tracked window (σ statements back from the failure).
    pub fn backward_order(&self, start: InstrId) -> Vec<InstrId> {
        let mut seen = vec![false; self.succs.len()];
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        q.push_back(start);
        seen[start.index()] = true;
        while let Some(s) = q.pop_front() {
            order.push(s);
            for &(p, _) in self.preds(s) {
                if !seen[p.index()] {
                    seen[p.index()] = true;
                    q.push_back(p);
                }
            }
        }
        order
    }

    /// Count of graph edges (for tests/diagnostics).
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }
}

fn resolve_callee(
    callee: &Callee,
    address_taken: &HashSet<FuncId>,
    program: &Program,
) -> Vec<FuncId> {
    match callee {
        Callee::Direct(f) => vec![*f],
        Callee::Indirect(_) => {
            // All address-taken functions may be the target.
            let mut v: Vec<FuncId> = address_taken.iter().copied().collect();
            v.sort_unstable();
            let _ = program;
            v
        }
    }
}

/// The first statement (instruction or terminator) of a block.
fn first_stmt(program: &Program, f: FuncId, b: crate::types::BlockId) -> InstrId {
    let block = program.function(f).block(b);
    block
        .instrs
        .first()
        .map(|i| i.id)
        .unwrap_or_else(|| block.term.id())
}

/// The statement after position `idx` in block `b` (the terminator if `idx`
/// is the last instruction).
fn stmt_after(program: &Program, f: FuncId, b: crate::types::BlockId, idx: usize) -> InstrId {
    let block = program.function(f).block(b);
    block
        .instrs
        .get(idx + 1)
        .map(|i| i.id)
        .unwrap_or_else(|| block.term.id())
}

/// All `ret` statement ids of a function.
fn rets_of(program: &Program, f: FuncId) -> Vec<InstrId> {
    program
        .function(f)
        .blocks
        .iter()
        .filter_map(|b| match &b.term {
            Terminator::Ret { id, .. } => Some(*id),
            _ => None,
        })
        .collect()
}

/// Convenience: the position of a statement (re-exported for planners).
pub fn stmt_pos(program: &Program, id: InstrId) -> Option<StmtPos> {
    program.stmt_pos(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn caller_callee() -> Program {
        let mut pb = ProgramBuilder::new("t");
        let helper = {
            let mut h = pb.function("helper", &["x"]);
            let x = h.var("x");
            let one = h.const_i64("one", 1);
            let y = h.add("y", x.into(), one.into());
            h.ret(Some(y.into()));
            h.finish()
        };
        let mut m = pb.function("main", &[]);
        let a = m.const_i64("a", 5);
        m.call_direct("r", helper, &[a.into()]);
        let r = m.var("r");
        m.print(&[r.into()]);
        m.ret(None);
        m.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn call_and_return_edges_exist() {
        let p = caller_callee();
        let g = Icfg::build_icfg(&p);
        let main = p.function_by_name("main").unwrap();
        let call_id = main.blocks[0].instrs[1].id;
        let helper = p.function_by_name("helper").unwrap();
        let helper_entry = helper.blocks[0].instrs[0].id;
        assert!(g
            .succs(call_id)
            .iter()
            .any(|&(t, k)| t == helper_entry && k == EdgeKind::Call));
        // Return edge: helper's ret -> the print after the call.
        let helper_ret = helper.blocks[0].term.id();
        let print_id = main.blocks[0].instrs[2].id;
        assert!(g
            .succs(helper_ret)
            .iter()
            .any(|&(t, k)| t == print_id && k == EdgeKind::Return));
    }

    #[test]
    fn spawn_edges_only_in_ticfg() {
        let mut pb = ProgramBuilder::new("t");
        let worker = {
            let mut w = pb.function("worker", &["arg"]);
            w.ret(None);
            w.finish()
        };
        let mut m = pb.function("main", &[]);
        m.spawn(Some("t"), Callee::Direct(worker), 0.into());
        let t = m.var("t");
        m.join(t.into());
        m.ret(None);
        m.finish();
        let p = pb.finish().unwrap();

        let icfg = Icfg::build_icfg(&p);
        let ticfg = Icfg::build_ticfg(&p);
        let main = p.function_by_name("main").unwrap();
        let spawn_id = main.blocks[0].instrs[0].id;
        let worker_f = p.function_by_name("worker").unwrap();
        let worker_entry = worker_f.blocks[0].term.id(); // empty body: terminator only
        assert!(!icfg
            .succs(spawn_id)
            .iter()
            .any(|&(_, k)| k == EdgeKind::ThreadCreate));
        assert!(ticfg
            .succs(spawn_id)
            .iter()
            .any(|&(t2, k)| t2 == worker_entry && k == EdgeKind::ThreadCreate));
        assert!(ticfg.edge_count() > icfg.edge_count());
    }

    #[test]
    fn backward_order_reaches_caller_through_call_edge() {
        let p = caller_callee();
        let g = Icfg::build_ticfg(&p);
        let main = p.function_by_name("main").unwrap();
        let helper = p.function_by_name("helper").unwrap();
        let helper_add = helper.blocks[0].instrs[1].id;
        let order = g.backward_order(helper_add);
        // Walking backward from inside helper must reach main's const
        // through the call edge.
        let main_const = main.blocks[0].instrs[0].id;
        assert!(order.contains(&main_const));
        assert_eq!(order[0], helper_add);
    }

    #[test]
    fn indirect_call_targets_address_taken_functions() {
        let mut pb = ProgramBuilder::new("t");
        let cb = {
            let mut f = pb.function("callback", &["x"]);
            f.ret(None);
            f.finish()
        };
        let other = {
            let mut f = pb.function("never_taken", &["x"]);
            f.ret(None);
            f.finish()
        };
        let mut m = pb.function("main", &[]);
        let fp = m.func_addr("fp", cb);
        m.call(None, Callee::Indirect(fp.into()), &[0.into()]);
        m.ret(None);
        m.finish();
        let p = pb.finish().unwrap();
        let g = Icfg::build_ticfg(&p);
        let main = p.function_by_name("main").unwrap();
        let icall = main.blocks[0].instrs[1].id;
        let targets = g.call_targets.get(&icall).unwrap();
        assert!(targets.contains(&cb));
        assert!(
            !targets.contains(&other),
            "functions whose address is never taken are not indirect targets"
        );
    }

    #[test]
    fn seq_edges_cover_every_block() {
        let p = caller_callee();
        let g = Icfg::build_icfg(&p);
        // Every non-terminator statement has at least one successor.
        for f in &p.functions {
            for b in &f.blocks {
                for i in &b.instrs {
                    assert!(
                        !g.succs(i.id).is_empty(),
                        "instruction {} has no successors",
                        i.id
                    );
                }
            }
        }
    }
}
