//! Core identifier and value types shared across the IR.

use std::fmt;

/// A runtime value. MiniC is untyped at runtime: everything — integers,
/// pointers, booleans, thread ids — is a 64-bit signed integer, exactly like
/// the flat word-oriented view a C program has of memory.
pub type Value = i64;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`crate::Program`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a local virtual register within a [`crate::Function`].
    VarId,
    "%"
);
id_type!(
    /// Identifies a global variable within a [`crate::Program`].
    GlobalId,
    "$g"
);
id_type!(
    /// Identifies a source file in the program's [`crate::SourceMap`].
    FileId,
    "file"
);

/// A program-wide unique identifier for an IR statement.
///
/// Every instruction *and* every terminator receives an `InstrId` when the
/// program is finalized. Gist's slices, instrumentation patches, trace
/// events, and failure sketches all reference statements by `InstrId` — it
/// plays the role the program counter plays in the paper's prototype.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstrId(pub u32);

impl InstrId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(VarId(7).to_string(), "%7");
        assert_eq!(GlobalId(1).to_string(), "$g1");
        assert_eq!(InstrId(42).to_string(), "i42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(InstrId(1) < InstrId(2));
        assert_eq!(InstrId(5).index(), 5);
        assert_eq!(BlockId(9).index(), 9);
    }
}
