//! Core identifier and value types shared across the IR.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A runtime value. MiniC is untyped at runtime: everything — integers,
/// pointers, booleans, thread ids — is a 64-bit signed integer, exactly like
/// the flat word-oriented view a C program has of memory.
pub type Value = i64;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`crate::Program`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a local virtual register within a [`crate::Function`].
    VarId,
    "%"
);
id_type!(
    /// Identifies a global variable within a [`crate::Program`].
    GlobalId,
    "$g"
);
id_type!(
    /// Identifies a source file in the program's [`crate::SourceMap`].
    FileId,
    "file"
);

/// A program-wide unique identifier for an IR statement.
///
/// Every instruction *and* every terminator receives an `InstrId` when the
/// program is finalized. Gist's slices, instrumentation patches, trace
/// events, and failure sketches all reference statements by `InstrId` — it
/// plays the role the program counter plays in the paper's prototype.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstrId(pub u32);

impl InstrId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(VarId(7).to_string(), "%7");
        assert_eq!(GlobalId(1).to_string(), "$g1");
        assert_eq!(InstrId(42).to_string(), "i42");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(InstrId(1) < InstrId(2));
        assert_eq!(InstrId(5).index(), 5);
        assert_eq!(BlockId(9).index(), 9);
    }

    #[test]
    fn ids_roundtrip_serde() {
        let id = InstrId(17);
        let json = serde_json_compat(&id);
        assert_eq!(json, "17");
    }

    fn serde_json_compat<T: serde::Serialize>(v: &T) -> String {
        // Tiny check that the ids serialize as bare integers (important for
        // compact trace files) without pulling serde_json into this crate.
        struct W(String);
        use serde::ser::*;
        impl Serializer for &mut W {
            type Ok = ();
            type Error = std::fmt::Error;
            type SerializeSeq = Impossible<(), std::fmt::Error>;
            type SerializeTuple = Impossible<(), std::fmt::Error>;
            type SerializeTupleStruct = Impossible<(), std::fmt::Error>;
            type SerializeTupleVariant = Impossible<(), std::fmt::Error>;
            type SerializeMap = Impossible<(), std::fmt::Error>;
            type SerializeStruct = Impossible<(), std::fmt::Error>;
            type SerializeStructVariant = Impossible<(), std::fmt::Error>;
            fn serialize_u32(self, v: u32) -> Result<(), std::fmt::Error> {
                self.0 = v.to_string();
                Ok(())
            }
            fn serialize_newtype_struct<T: ?Sized + Serialize>(
                self,
                _name: &'static str,
                value: &T,
            ) -> Result<(), std::fmt::Error> {
                value.serialize(self)
            }
            // Everything else is unreachable for our id types.
            fn serialize_bool(self, _: bool) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_i8(self, _: i8) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_i16(self, _: i16) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_i32(self, _: i32) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_i64(self, _: i64) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_u8(self, _: u8) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_u16(self, _: u16) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_u64(self, _: u64) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_f32(self, _: f32) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_f64(self, _: f64) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_char(self, _: char) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_str(self, _: &str) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_bytes(self, _: &[u8]) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_none(self) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_some<T: ?Sized + Serialize>(self, _: &T) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_unit(self) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_unit_struct(self, _: &'static str) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_unit_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
            ) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_newtype_variant<T: ?Sized + Serialize>(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: &T,
            ) -> Result<(), std::fmt::Error> {
                unreachable!()
            }
            fn serialize_seq(
                self,
                _: Option<usize>,
            ) -> Result<Self::SerializeSeq, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_tuple_struct(
                self,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeTupleStruct, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_tuple_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeTupleVariant, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_map(
                self,
                _: Option<usize>,
            ) -> Result<Self::SerializeMap, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_struct(
                self,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeStruct, std::fmt::Error> {
                unreachable!()
            }
            fn serialize_struct_variant(
                self,
                _: &'static str,
                _: u32,
                _: &'static str,
                _: usize,
            ) -> Result<Self::SerializeStructVariant, std::fmt::Error> {
                unreachable!()
            }
        }
        let mut w = W(String::new());
        v.serialize(&mut w).unwrap();
        w.0
    }
}
