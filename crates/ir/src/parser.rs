//! Parser for the MiniC textual format.
//!
//! The format is line-oriented. A program is a sequence of global
//! declarations and function definitions:
//!
//! ```text
//! ; comments start with ';' or '#'
//! global head = 0
//! global buf[8] = [1, 2, 3]
//!
//! fn main(argc) {
//! entry:
//!   x = const 10            @ main.c:3
//!   q = call init(x)        @ main.c:4
//!   t = spawn cons(q)       @ main.c:5
//!   condbr x, body, exit
//! body:
//!   store $head, x
//!   br exit
//! exit:
//!   join t
//!   ret
//! }
//! ```
//!
//! Operands: bare identifiers are registers, `$name` references a global's
//! address, and integer literals are constants. A trailing `@ file:line`
//! attaches a source location; the location is sticky until changed.

use std::collections::HashMap;

use crate::instr::{BinKind, Callee, CmpKind, Instr, IntrinsicKind, Op, Operand, Terminator};
use crate::program::{BasicBlock, Function, Global, Program, ValidationError};
use crate::srcmap::SrcLoc;
use crate::types::{BlockId, FuncId, GlobalId, InstrId, Value, VarId};

/// A parse error with its 1-based line number in the input text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the input.
    pub line: usize,
    /// Human-readable message.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<Vec<ValidationError>> for ParseError {
    fn from(errs: Vec<ValidationError>) -> Self {
        ParseError {
            line: 0,
            msg: format!(
                "validation failed: {}",
                errs.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        }
    }
}

/// Parses a program from text.
pub fn parse_program(name: &str, text: &str) -> Result<Program, ParseError> {
    Parser::new(name, text).run()
}

struct Parser<'t> {
    program: Program,
    lines: Vec<(usize, &'t str)>,
    pos: usize,
    func_ids: HashMap<String, FuncId>,
    global_ids: HashMap<String, GlobalId>,
}

impl<'t> Parser<'t> {
    fn new(name: &str, text: &'t str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                // Strip comments.
                let no_comment = match l.find([';', '#']) {
                    Some(p) => &l[..p],
                    None => l,
                };
                (i + 1, no_comment.trim())
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser {
            program: Program::empty(name),
            lines,
            pos: 0,
            func_ids: HashMap::new(),
            global_ids: HashMap::new(),
        }
    }

    fn err(&self, line: usize, msg: impl Into<String>) -> ParseError {
        ParseError {
            line,
            msg: msg.into(),
        }
    }

    fn run(mut self) -> Result<Program, ParseError> {
        while self.pos < self.lines.len() {
            let (lineno, line) = self.lines[self.pos];
            if let Some(rest) = line.strip_prefix("global ") {
                self.parse_global(lineno, rest)?;
                self.pos += 1;
            } else if line.starts_with("fn ") {
                self.parse_function()?;
            } else {
                return Err(self.err(lineno, format!("expected 'global' or 'fn', got '{line}'")));
            }
        }
        // Entry is 'main' if present, else the first function.
        if let Some(&main) = self.func_ids.get("main") {
            self.program.entry = main;
        }
        self.program.finalize();
        self.program.validate()?;
        Ok(self.program)
    }

    fn parse_global(&mut self, lineno: usize, rest: &str) -> Result<(), ParseError> {
        // `name = init` or `name[size] = [v, v, ...]` or `name[size]`
        let (decl, init_s) = match rest.split_once('=') {
            Some((d, i)) => (d.trim(), Some(i.trim())),
            None => (rest.trim(), None),
        };
        let (name, size) = if let Some(open) = decl.find('[') {
            let close = decl
                .find(']')
                .ok_or_else(|| self.err(lineno, "missing ']' in global array"))?;
            let size: u32 = decl[open + 1..close]
                .trim()
                .parse()
                .map_err(|_| self.err(lineno, "bad array size"))?;
            (decl[..open].trim(), size)
        } else {
            (decl, 1u32)
        };
        let init = match init_s {
            None => Vec::new(),
            Some(s) if s.starts_with('[') => {
                let inner = s
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| self.err(lineno, "bad array initializer"))?;
                inner
                    .split(',')
                    .filter(|p| !p.trim().is_empty())
                    .map(|p| {
                        p.trim()
                            .parse::<Value>()
                            .map_err(|_| self.err(lineno, format!("bad initializer '{p}'")))
                    })
                    .collect::<Result<Vec<_>, _>>()?
            }
            Some(s) => vec![s
                .parse::<Value>()
                .map_err(|_| self.err(lineno, format!("bad initializer '{s}'")))?],
        };
        if self.global_ids.contains_key(name) {
            return Err(self.err(lineno, format!("duplicate global '{name}'")));
        }
        let id = GlobalId(self.program.globals.len() as u32);
        self.global_ids.insert(name.to_owned(), id);
        self.program.globals.push(Global {
            id,
            name: name.to_owned(),
            size,
            init,
            loc: SrcLoc::UNKNOWN,
        });
        Ok(())
    }

    fn intern_func(&mut self, name: &str) -> FuncId {
        if let Some(&id) = self.func_ids.get(name) {
            return id;
        }
        let id = FuncId(self.program.functions.len() as u32);
        self.func_ids.insert(name.to_owned(), id);
        self.program.functions.push(Function {
            id,
            name: name.to_owned(),
            params: Vec::new(),
            var_names: Vec::new(),
            blocks: Vec::new(),
            loc: SrcLoc::UNKNOWN,
        });
        id
    }

    fn parse_function(&mut self) -> Result<(), ParseError> {
        let (lineno, header) = self.lines[self.pos];
        self.pos += 1;
        // `fn name(p1, p2) {`
        let rest = header.strip_prefix("fn ").expect("checked by caller");
        let open_paren = rest
            .find('(')
            .ok_or_else(|| self.err(lineno, "missing '(' in fn header"))?;
        let close_paren = rest
            .find(')')
            .ok_or_else(|| self.err(lineno, "missing ')' in fn header"))?;
        let name = rest[..open_paren].trim();
        if !rest[close_paren + 1..].trim_end().ends_with('{') {
            return Err(self.err(lineno, "fn header must end with '{'"));
        }
        let params: Vec<String> = rest[open_paren + 1..close_paren]
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_owned)
            .collect();
        let fid = self.intern_func(name);
        {
            let f = &mut self.program.functions[fid.index()];
            if !f.blocks.is_empty() {
                return Err(self.err(lineno, format!("duplicate function '{name}'")));
            }
            f.params = (0..params.len() as u32).map(VarId).collect();
            f.var_names = params;
        }

        let mut fb = FnParser {
            fid,
            vars: HashMap::new(),
            blocks: Vec::new(),
            block_ids: HashMap::new(),
            current_instrs: Vec::new(),
            current_label: None,
            cur_loc: SrcLoc::UNKNOWN,
        };
        for (i, n) in self.program.functions[fid.index()]
            .var_names
            .iter()
            .enumerate()
        {
            fb.vars.insert(n.clone(), VarId(i as u32));
        }

        loop {
            if self.pos >= self.lines.len() {
                return Err(self.err(lineno, format!("unterminated function '{name}'")));
            }
            let (ln, line) = self.lines[self.pos];
            self.pos += 1;
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                if !label.contains(char::is_whitespace) {
                    fb.start_block(label, self, ln)?;
                    continue;
                }
            }
            self.parse_stmt(&mut fb, ln, line)?;
        }
        fb.finish(self, lineno)?;
        Ok(())
    }

    /// Splits a trailing ` @ file:line` annotation.
    fn split_loc<'a>(&mut self, line: &'a str) -> (&'a str, Option<SrcLoc>) {
        if let Some(at) = line.rfind(" @ ") {
            let ann = line[at + 3..].trim();
            if let Some((file, lno)) = ann.rsplit_once(':') {
                if let Ok(lno) = lno.parse::<u32>() {
                    let fid = self.program.source_map.intern_file(file.trim());
                    return (line[..at].trim_end(), Some(SrcLoc::new(fid, lno)));
                }
            }
        }
        (line, None)
    }

    fn parse_stmt(&mut self, fb: &mut FnParser, ln: usize, line: &str) -> Result<(), ParseError> {
        let (line, loc) = self.split_loc(line);
        if let Some(loc) = loc {
            fb.cur_loc = loc;
        }
        let loc = fb.cur_loc;

        // Terminators.
        if let Some(rest) = line.strip_prefix("br ") {
            let target = fb.block_ref(rest.trim());
            fb.terminate(Terminator::Br {
                id: InstrId(0),
                target,
                loc,
            });
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("condbr ") {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 3 {
                return Err(self.err(ln, "condbr needs 'cond, then, else'"));
            }
            let cond = self.operand(fb, parts[0], ln)?;
            let then_bb = fb.block_ref(parts[1]);
            let else_bb = fb.block_ref(parts[2]);
            fb.terminate(Terminator::CondBr {
                id: InstrId(0),
                cond,
                then_bb,
                else_bb,
                loc,
            });
            return Ok(());
        }
        if line == "ret" {
            fb.terminate(Terminator::Ret {
                id: InstrId(0),
                value: None,
                loc,
            });
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix("ret ") {
            let value = Some(self.operand(fb, rest.trim(), ln)?);
            fb.terminate(Terminator::Ret {
                id: InstrId(0),
                value,
                loc,
            });
            return Ok(());
        }
        if line == "unreachable" {
            fb.terminate(Terminator::Unreachable {
                id: InstrId(0),
                loc,
            });
            return Ok(());
        }

        // `dst = rhs` or bare op.
        let (dst, rhs) = match find_top_level_eq(line) {
            Some(p) => {
                let d = line[..p].trim();
                (Some(d), line[p + 1..].trim())
            }
            None => (None, line),
        };
        let op = self.parse_op(fb, ln, dst, rhs)?;
        fb.current_instrs.push(Instr {
            id: InstrId(0),
            op,
            loc,
        });
        Ok(())
    }

    fn parse_op(
        &mut self,
        fb: &mut FnParser,
        ln: usize,
        dst: Option<&str>,
        rhs: &str,
    ) -> Result<Op, ParseError> {
        let dst_var =
            |s: &mut Self, fb: &mut FnParser, d: Option<&str>| -> Result<VarId, ParseError> {
                let _ = s;
                match d {
                    Some(d) => Ok(fb.var(d)),
                    None => Err(ParseError {
                        line: ln,
                        msg: "this operation requires a destination".into(),
                    }),
                }
            };
        let (kw, rest) = match rhs.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (rhs, ""),
        };
        // Call syntax: `call name(args)` / `icall ptr(args)` / `spawn name(arg)`.
        if kw == "call" || kw == "icall" || kw == "spawn" {
            let open = rest
                .find('(')
                .ok_or_else(|| self.err(ln, format!("{kw} needs '(args)'")))?;
            let close = rest
                .rfind(')')
                .ok_or_else(|| self.err(ln, format!("{kw} needs ')'")))?;
            let target = rest[..open].trim();
            let args: Vec<Operand> = rest[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|a| !a.is_empty())
                .map(|a| self.operand(fb, a, ln))
                .collect::<Result<_, _>>()?;
            let d = dst.map(|d| fb.var(d));
            if kw == "icall" {
                let ptr = self.operand(fb, target, ln)?;
                return Ok(Op::Call {
                    dst: d,
                    callee: Callee::Indirect(ptr),
                    args,
                });
            }
            // Direct call / spawn: resolve function name lazily.
            let callee = Callee::Direct(self.intern_func(target));
            if kw == "spawn" {
                if args.len() != 1 {
                    return Err(self.err(ln, "spawn takes exactly one argument"));
                }
                return Ok(Op::ThreadCreate {
                    dst: d,
                    routine: callee,
                    arg: args[0],
                });
            }
            return Ok(Op::Call {
                dst: d,
                callee,
                args,
            });
        }
        match kw {
            "const" => {
                let v: Value = rest
                    .parse()
                    .map_err(|_| self.err(ln, format!("bad constant '{rest}'")))?;
                Ok(Op::Const {
                    dst: dst_var(self, fb, dst)?,
                    value: v,
                })
            }
            "cmp" => {
                let (kind_s, ops) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| self.err(ln, "cmp needs kind and operands"))?;
                let kind = CmpKind::from_mnemonic(kind_s)
                    .ok_or_else(|| self.err(ln, format!("bad cmp kind '{kind_s}'")))?;
                let (a, b) = self.two_operands(fb, ops, ln)?;
                Ok(Op::Cmp {
                    dst: dst_var(self, fb, dst)?,
                    kind,
                    a,
                    b,
                })
            }
            "load" => Ok(Op::Load {
                dst: dst_var(self, fb, dst)?,
                addr: self.operand(fb, rest, ln)?,
            }),
            "store" => {
                let (a, b) = self.two_operands(fb, rest, ln)?;
                Ok(Op::Store { addr: a, value: b })
            }
            "gep" => {
                let (a, b) = self.two_operands(fb, rest, ln)?;
                Ok(Op::Gep {
                    dst: dst_var(self, fb, dst)?,
                    base: a,
                    offset: b,
                })
            }
            "alloc" => Ok(Op::Alloc {
                dst: dst_var(self, fb, dst)?,
                size: self.operand(fb, rest, ln)?,
            }),
            "stackalloc" => Ok(Op::StackAlloc {
                dst: dst_var(self, fb, dst)?,
                size: self.operand(fb, rest, ln)?,
            }),
            "free" => Ok(Op::Free {
                addr: self.operand(fb, rest, ln)?,
            }),
            "funcaddr" => Ok(Op::FuncAddr {
                dst: dst_var(self, fb, dst)?,
                func: self.intern_func(rest.trim()),
            }),
            "join" => Ok(Op::ThreadJoin {
                tid: self.operand(fb, rest, ln)?,
            }),
            "lock" => Ok(Op::MutexLock {
                addr: self.operand(fb, rest, ln)?,
            }),
            "unlock" => Ok(Op::MutexUnlock {
                addr: self.operand(fb, rest, ln)?,
            }),
            "assert" => {
                let (cond_s, msg) = match rest.split_once(',') {
                    Some((c, m)) => (c.trim(), m.trim().trim_matches('"').to_owned()),
                    None => (rest, String::new()),
                };
                Ok(Op::Assert {
                    cond: self.operand(fb, cond_s, ln)?,
                    msg,
                })
            }
            "print" => {
                let args = rest
                    .split(',')
                    .map(str::trim)
                    .filter(|a| !a.is_empty())
                    .map(|a| self.operand(fb, a, ln))
                    .collect::<Result<_, _>>()?;
                Ok(Op::Print { args })
            }
            "input" => {
                let idx: usize = rest
                    .parse()
                    .map_err(|_| self.err(ln, format!("bad input index '{rest}'")))?;
                Ok(Op::ReadInput {
                    dst: dst_var(self, fb, dst)?,
                    index: idx,
                })
            }
            "nop" => Ok(Op::Nop),
            _ => {
                if let Some(kind) = BinKind::from_mnemonic(kw) {
                    let (a, b) = self.two_operands(fb, rest, ln)?;
                    return Ok(Op::Bin {
                        dst: dst_var(self, fb, dst)?,
                        kind,
                        a,
                        b,
                    });
                }
                if let Some(kind) = IntrinsicKind::from_mnemonic(kw) {
                    let args = rest
                        .split(',')
                        .map(str::trim)
                        .filter(|a| !a.is_empty())
                        .map(|a| self.operand(fb, a, ln))
                        .collect::<Result<_, _>>()?;
                    return Ok(Op::Intrinsic {
                        dst: dst.map(|d| fb.var(d)),
                        kind,
                        args,
                    });
                }
                Err(self.err(ln, format!("unknown operation '{kw}'")))
            }
        }
    }

    fn two_operands(
        &mut self,
        fb: &mut FnParser,
        s: &str,
        ln: usize,
    ) -> Result<(Operand, Operand), ParseError> {
        let parts: Vec<&str> = s.split(',').map(str::trim).collect();
        if parts.len() != 2 {
            return Err(self.err(ln, format!("expected two operands in '{s}'")));
        }
        Ok((
            self.operand(fb, parts[0], ln)?,
            self.operand(fb, parts[1], ln)?,
        ))
    }

    fn operand(&mut self, fb: &mut FnParser, s: &str, ln: usize) -> Result<Operand, ParseError> {
        let s = s.trim();
        if s.is_empty() {
            return Err(self.err(ln, "empty operand"));
        }
        if let Some(gname) = s.strip_prefix('$') {
            let id = self
                .global_ids
                .get(gname)
                .copied()
                .ok_or_else(|| self.err(ln, format!("unknown global '${gname}'")))?;
            return Ok(Operand::Global(id));
        }
        if s.starts_with('-') || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            let v: Value = s
                .parse()
                .map_err(|_| self.err(ln, format!("bad integer '{s}'")))?;
            return Ok(Operand::Const(v));
        }
        Ok(Operand::Var(fb.var(s)))
    }
}

/// Finds a top-level `=` that is an assignment (not part of `==`, which the
/// format doesn't have; and not inside a string).
fn find_top_level_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

struct FnParser {
    fid: FuncId,
    vars: HashMap<String, VarId>,
    blocks: Vec<BasicBlock>,
    block_ids: HashMap<String, BlockId>,
    current_instrs: Vec<Instr>,
    current_label: Option<String>,
    cur_loc: SrcLoc,
}

impl FnParser {
    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = VarId(self.vars.len() as u32);
        self.vars.insert(name.to_owned(), v);
        v
    }

    fn block_ref(&mut self, label: &str) -> BlockId {
        if let Some(&b) = self.block_ids.get(label) {
            return b;
        }
        let b = BlockId(self.block_ids.len() as u32);
        self.block_ids.insert(label.to_owned(), b);
        b
    }

    fn start_block(&mut self, label: &str, p: &Parser<'_>, ln: usize) -> Result<(), ParseError> {
        if self.current_label.is_some() || !self.current_instrs.is_empty() {
            return Err(p.err(
                ln,
                format!(
                    "block '{}' starts before previous block was terminated",
                    label
                ),
            ));
        }
        // Reserve the id now so the label order defines block ids.
        self.block_ref(label);
        self.current_label = Some(label.to_owned());
        Ok(())
    }

    fn terminate(&mut self, term: Terminator) {
        let label = self
            .current_label
            .take()
            .unwrap_or_else(|| "entry".to_owned());
        let id = if let Some(&b) = self.block_ids.get(&label) {
            b
        } else {
            let b = BlockId(self.block_ids.len() as u32);
            self.block_ids.insert(label.clone(), b);
            b
        };
        self.blocks.push(BasicBlock {
            id,
            label,
            instrs: std::mem::take(&mut self.current_instrs),
            term,
        });
    }

    fn finish(mut self, p: &mut Parser<'_>, ln: usize) -> Result<(), ParseError> {
        if !self.current_instrs.is_empty() || self.current_label.is_some() {
            return Err(p.err(ln, "function ends with an unterminated block"));
        }
        self.blocks.sort_by_key(|b| b.id);
        // Check density: every referenced label must have been defined.
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.index() != i {
                let missing: Vec<&String> = self
                    .block_ids
                    .iter()
                    .filter(|(_, &v)| self.blocks.iter().all(|bb| bb.id != v))
                    .map(|(k, _)| k)
                    .collect();
                return Err(p.err(ln, format!("undefined block labels: {missing:?}")));
            }
        }
        let defined: Vec<BlockId> = self.blocks.iter().map(|b| b.id).collect();
        for (label, id) in &self.block_ids {
            if !defined.contains(id) {
                return Err(p.err(ln, format!("undefined block label '{label}'")));
            }
        }
        let f = &mut p.program.functions[self.fid.index()];
        let mut names: Vec<(VarId, String)> = self.vars.into_iter().map(|(n, v)| (v, n)).collect();
        names.sort_by_key(|(v, _)| *v);
        f.var_names = names.into_iter().map(|(_, n)| n).collect();
        f.blocks = self.blocks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_program;

    const PBZIP_LIKE: &str = r#"
; pbzip2-like demo
global mut_cell = 0

fn main() {
entry:
  q = alloc 2              @ pbzip2.c:10
  m = alloc 1              @ pbzip2.c:11
  store q, m               @ pbzip2.c:11
  t = spawn cons(q)        @ pbzip2.c:13
  free m                   @ pbzip2.c:20
  store q, 0               @ pbzip2.c:21
  join t                   @ pbzip2.c:22
  ret
}

fn cons(q) {
entry:
  m2 = load q              @ pbzip2.c:40
  unlock m2                @ pbzip2.c:41
  ret
}
"#;

    #[test]
    fn parses_pbzip_like_program() {
        let p = parse_program("pbzip2", PBZIP_LIKE).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert_eq!(p.globals.len(), 1);
        let main = p.function_by_name("main").unwrap();
        assert_eq!(main.blocks.len(), 1);
        assert_eq!(main.blocks[0].instrs.len(), 7);
        assert_eq!(p.entry, main.id);
        // Source locations attached and sticky.
        let store = &main.blocks[0].instrs[2];
        assert_eq!(p.source_map.display(store.loc), "pbzip2.c:11");
    }

    #[test]
    fn roundtrips_through_printer() {
        let p1 = parse_program("pbzip2", PBZIP_LIKE).unwrap();
        let text = print_program(&p1);
        let p2 = parse_program("pbzip2", &text).unwrap();
        assert_eq!(p1.functions.len(), p2.functions.len());
        assert_eq!(p1.stmt_count(), p2.stmt_count());
        for (f1, f2) in p1.functions.iter().zip(&p2.functions) {
            assert_eq!(f1.name, f2.name);
            assert_eq!(f1.blocks.len(), f2.blocks.len());
            for (b1, b2) in f1.blocks.iter().zip(&f2.blocks) {
                assert_eq!(b1.instrs.len(), b2.instrs.len(), "fn {}", f1.name);
                for (i1, i2) in b1.instrs.iter().zip(&b2.instrs) {
                    assert_eq!(i1.op, i2.op, "fn {}", f1.name);
                }
            }
        }
    }

    #[test]
    fn parses_branches_and_blocks() {
        let text = r#"
fn main() {
entry:
  n = const 3
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  br head
exit:
  ret
}
"#;
        let p = parse_program("loop", text).unwrap();
        let f = &p.functions[0];
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.blocks[0].label, "entry");
        // Labels referenced before definition resolve correctly.
        match &f.blocks[1].term {
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                assert_eq!(f.block(*then_bb).label, "body");
                assert_eq!(f.block(*else_bb).label, "exit");
            }
            t => panic!("expected condbr, got {t:?}"),
        }
    }

    #[test]
    fn error_on_unknown_op() {
        let text = "fn main() {\nentry:\n  frobnicate x\n  ret\n}\n";
        let e = parse_program("t", text).unwrap_err();
        assert!(e.msg.contains("unknown operation"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_on_undefined_label() {
        let text = "fn main() {\nentry:\n  br nowhere\n}\n";
        let e = parse_program("t", text).unwrap_err();
        assert!(e.msg.contains("undefined block label"), "{e}");
    }

    #[test]
    fn error_on_unknown_global() {
        let text = "fn main() {\nentry:\n  x = load $nope\n  ret\n}\n";
        let e = parse_program("t", text).unwrap_err();
        assert!(e.msg.contains("unknown global"), "{e}");
    }

    #[test]
    fn parses_assert_with_message() {
        let text = "fn main() {\nentry:\n  x = const 1\n  assert x, \"x must be set\"\n  ret\n}\n";
        let p = parse_program("t", text).unwrap();
        match &p.functions[0].blocks[0].instrs[1].op {
            Op::Assert { msg, .. } => assert_eq!(msg, "x must be set"),
            o => panic!("expected assert, got {o:?}"),
        }
    }

    #[test]
    fn parses_global_array() {
        let text = "global buf[4] = [1, 2]\nfn main() {\nentry:\n  ret\n}\n";
        let p = parse_program("t", text).unwrap();
        assert_eq!(p.globals[0].size, 4);
        assert_eq!(p.globals[0].init, vec![1, 2]);
    }

    #[test]
    fn parses_indirect_call_and_funcaddr() {
        let text = r#"
fn cb(x) {
entry:
  ret x
}
fn main() {
entry:
  fp = funcaddr cb
  r = icall fp(7)
  print r
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let main = p.function_by_name("main").unwrap();
        match &main.blocks[0].instrs[1].op {
            Op::Call {
                callee: Callee::Indirect(_),
                ..
            } => {}
            o => panic!("expected icall, got {o:?}"),
        }
    }

    #[test]
    fn calls_may_reference_later_functions() {
        let text = r#"
fn main() {
entry:
  r = call helper(1)
  ret
}
fn helper(x) {
entry:
  ret x
}
"#;
        let p = parse_program("t", text).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn entry_is_main_even_if_not_first() {
        let text = "fn helper() {\nentry:\n  ret\n}\nfn main() {\nentry:\n  ret\n}\n";
        let p = parse_program("t", text).unwrap();
        assert_eq!(p.function(p.entry).name, "main");
    }
}
