//! IR instructions, operands, and terminators.

use std::fmt;

use crate::srcmap::SrcLoc;
use crate::types::{FuncId, GlobalId, InstrId, Value, VarId};

/// An operand of an instruction.
///
/// In the paper's Algorithm 1 vocabulary, operands are the *items* that the
/// backward slicer pushes onto its work set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A local virtual register.
    Var(VarId),
    /// An immediate constant.
    Const(Value),
    /// The *address* of a global variable. Reading a global is
    /// `load $g`; writing is `store $g, v`.
    Global(GlobalId),
}

impl From<VarId> for Operand {
    fn from(v: VarId) -> Self {
        Operand::Var(v)
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Const(v)
    }
}

impl From<GlobalId> for Operand {
    fn from(g: GlobalId) -> Self {
        Operand::Global(g)
    }
}

impl Operand {
    /// Returns the variable if this operand is a register.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the global if this operand is a global address.
    pub fn as_global(self) -> Option<GlobalId> {
        match self {
            Operand::Global(g) => Some(g),
            _ => None,
        }
    }
}

/// Binary arithmetic/bitwise operation kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (division by zero is a VM failure).
    Div,
    /// Signed remainder (remainder by zero is a VM failure).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 63).
    Shl,
    /// Arithmetic right shift (shift amount masked to 63).
    Shr,
}

impl BinKind {
    /// The textual mnemonic used by the parser/printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
            BinKind::Rem => "rem",
            BinKind::And => "and",
            BinKind::Or => "or",
            BinKind::Xor => "xor",
            BinKind::Shl => "shl",
            BinKind::Shr => "shr",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinKind::Add,
            "sub" => BinKind::Sub,
            "mul" => BinKind::Mul,
            "div" => BinKind::Div,
            "rem" => BinKind::Rem,
            "and" => BinKind::And,
            "or" => BinKind::Or,
            "xor" => BinKind::Xor,
            "shl" => BinKind::Shl,
            "shr" => BinKind::Shr,
            _ => return None,
        })
    }
}

/// Comparison operation kinds (result is 0 or 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// The textual mnemonic used by the parser/printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpKind::Eq,
            "ne" => CmpKind::Ne,
            "lt" => CmpKind::Lt,
            "le" => CmpKind::Le,
            "gt" => CmpKind::Gt,
            "ge" => CmpKind::Ge,
            _ => return None,
        })
    }

    /// Evaluates the comparison.
    pub fn eval(self, a: Value, b: Value) -> Value {
        let r = match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        };
        r as Value
    }
}

/// A call target: a statically known function or a function pointer.
///
/// Indirect calls are why the paper needs *runtime* control-flow tracking —
/// static slicing cannot resolve dynamically computed call targets (§3.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// Direct call to a known function.
    Direct(FuncId),
    /// Indirect call through an operand holding an encoded function address
    /// (see [`crate::program::Program::FUNC_ADDR_BASE`]).
    Indirect(Operand),
}

/// String/memory intrinsics used by the evaluation programs (e.g. the Curl
/// #965 bug calls `strlen` on a NULL pointer).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IntrinsicKind {
    /// `strlen(p)`: count non-zero cells starting at `p`. NULL deref on `p == 0`.
    Strlen,
    /// `memset(p, v, n)`: fill `n` cells starting at `p` with `v`.
    Memset,
    /// `memcpy(dst, src, n)`: copy `n` cells.
    Memcpy,
}

impl IntrinsicKind {
    /// The textual mnemonic used by the parser/printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntrinsicKind::Strlen => "strlen",
            IntrinsicKind::Memset => "memset",
            IntrinsicKind::Memcpy => "memcpy",
        }
    }

    /// Parses a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "strlen" => IntrinsicKind::Strlen,
            "memset" => IntrinsicKind::Memset,
            "memcpy" => IntrinsicKind::Memcpy,
            _ => return None,
        })
    }
}

/// The operation performed by an [`Instr`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// `dst = const v`
    Const {
        /// Destination register.
        dst: VarId,
        /// Immediate value.
        value: Value,
    },
    /// `dst = <bin> a, b`
    Bin {
        /// Destination register.
        dst: VarId,
        /// Operation kind.
        kind: BinKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = cmp <kind> a, b`
    Cmp {
        /// Destination register.
        dst: VarId,
        /// Comparison kind.
        kind: CmpKind,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = load addr` — read memory cell `*addr`.
    Load {
        /// Destination register.
        dst: VarId,
        /// Address operand.
        addr: Operand,
    },
    /// `store addr, value` — write memory cell `*addr`.
    Store {
        /// Address operand.
        addr: Operand,
        /// Value to store.
        value: Operand,
    },
    /// `dst = gep base, offset` — address arithmetic `base + offset`
    /// (models C field/array addressing like `&f->mut`).
    Gep {
        /// Destination register.
        dst: VarId,
        /// Base address.
        base: Operand,
        /// Cell offset.
        offset: Operand,
    },
    /// `dst = alloc n` — heap-allocate `n` cells, returns base address.
    Alloc {
        /// Destination register (receives base address).
        dst: VarId,
        /// Number of cells.
        size: Operand,
    },
    /// `free p` — release a heap allocation. Double free is a failure.
    Free {
        /// Base address of the allocation.
        addr: Operand,
    },
    /// `dst = stackalloc n` — allocate `n` cells in the current frame's
    /// stack region. Stack cells are excluded from watchpoint placement
    /// (paper §3.2.3 / §6: Gist does not track stack variables).
    StackAlloc {
        /// Destination register (receives base address).
        dst: VarId,
        /// Number of cells.
        size: Operand,
    },
    /// `dst = call f(args...)` or `dst = icall p(args...)`
    Call {
        /// Optional destination for the return value.
        dst: Option<VarId>,
        /// Call target.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Operand>,
    },
    /// `dst = funcaddr f` — take the address of a function (for `icall`).
    FuncAddr {
        /// Destination register.
        dst: VarId,
        /// The function whose encoded address is produced.
        func: FuncId,
    },
    /// `tid = spawn f(arg)` — create a thread running `f(arg)`.
    ThreadCreate {
        /// Optional destination for the thread id.
        dst: Option<VarId>,
        /// Thread start routine.
        routine: Callee,
        /// Single argument passed to the routine.
        arg: Operand,
    },
    /// `join t` — wait for thread `t` to finish.
    ThreadJoin {
        /// Thread id operand.
        tid: Operand,
    },
    /// `lock p` — acquire the mutex stored in cell `*p`.
    ///
    /// Locking through a NULL or dangling pointer is a segfault — this is
    /// exactly the pbzip2 #1 failure from the paper's Fig. 1.
    MutexLock {
        /// Address of the mutex cell.
        addr: Operand,
    },
    /// `unlock p` — release the mutex stored in cell `*p`.
    MutexUnlock {
        /// Address of the mutex cell.
        addr: Operand,
    },
    /// `assert cond, "msg"` — failure point when `cond == 0`.
    Assert {
        /// Condition operand.
        cond: Operand,
        /// Human-readable assertion message.
        msg: String,
    },
    /// `print a, b, ...` — append values to the run's observable output.
    Print {
        /// Values to print.
        args: Vec<Operand>,
    },
    /// `dst = intrinsic(args...)` — string/memory helper.
    Intrinsic {
        /// Optional destination register.
        dst: Option<VarId>,
        /// Which intrinsic.
        kind: IntrinsicKind,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// `dst = arg n` — read the n-th program input (workload-provided).
    ReadInput {
        /// Destination register.
        dst: VarId,
        /// Input index.
        index: usize,
    },
    /// No operation (kept for patched-out statements).
    Nop,
}

impl Op {
    /// The register defined by this operation, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Op::Const { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Cmp { dst, .. }
            | Op::Load { dst, .. }
            | Op::Gep { dst, .. }
            | Op::Alloc { dst, .. }
            | Op::StackAlloc { dst, .. }
            | Op::FuncAddr { dst, .. }
            | Op::ReadInput { dst, .. } => Some(*dst),
            Op::Call { dst, .. } | Op::ThreadCreate { dst, .. } | Op::Intrinsic { dst, .. } => *dst,
            _ => None,
        }
    }

    /// All operands read by this operation.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Op::Const { .. } | Op::FuncAddr { .. } | Op::ReadInput { .. } | Op::Nop => vec![],
            Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => vec![*a, *b],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value } => vec![*addr, *value],
            Op::Gep { base, offset, .. } => vec![*base, *offset],
            Op::Alloc { size, .. } | Op::StackAlloc { size, .. } => vec![*size],
            Op::Free { addr } => vec![*addr],
            Op::Call { callee, args, .. } => {
                let mut v = args.clone();
                if let Callee::Indirect(op) = callee {
                    v.push(*op);
                }
                v
            }
            Op::ThreadCreate { routine, arg, .. } => {
                let mut v = vec![*arg];
                if let Callee::Indirect(op) = routine {
                    v.push(*op);
                }
                v
            }
            Op::ThreadJoin { tid } => vec![*tid],
            Op::MutexLock { addr } | Op::MutexUnlock { addr } => vec![*addr],
            Op::Assert { cond, .. } => vec![*cond],
            Op::Print { args } => args.clone(),
            Op::Intrinsic { args, .. } => args.clone(),
        }
    }

    /// True if this operation reads or writes memory.
    ///
    /// These are the "memory access" sources of Algorithm 1 and the
    /// candidates for hardware watchpoint placement.
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::Store { .. }
                | Op::Free { .. }
                | Op::MutexLock { .. }
                | Op::MutexUnlock { .. }
                | Op::Intrinsic { .. }
        )
    }

    /// True if this operation writes memory (for W/R classification of the
    /// atomicity-violation and race patterns in paper §3.3).
    pub fn is_memory_write(&self) -> bool {
        matches!(
            self,
            Op::Store { .. } | Op::Free { .. } | Op::MutexLock { .. } | Op::MutexUnlock { .. }
        )
    }

    /// The address operand of a memory access, if this op is one with a
    /// single statically identifiable address.
    pub fn access_addr(&self) -> Option<Operand> {
        match self {
            Op::Load { addr, .. }
            | Op::Store { addr, .. }
            | Op::Free { addr }
            | Op::MutexLock { addr }
            | Op::MutexUnlock { addr } => Some(*addr),
            _ => None,
        }
    }

    /// True for call-like operations (calls and thread creations), which
    /// Algorithm 1 treats specially via `getRetValues`.
    pub fn is_call_like(&self) -> bool {
        matches!(self, Op::Call { .. } | Op::ThreadCreate { .. })
    }
}

/// A single IR instruction: an operation plus identity and source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Instr {
    /// Program-wide unique statement id (assigned at finalize).
    pub id: InstrId,
    /// The operation.
    pub op: Op,
    /// Source attribution.
    pub loc: SrcLoc,
}

/// A basic-block terminator. Terminators also receive [`InstrId`]s because
/// branches are statements that participate in slices and control-flow
/// tracking.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br {
        /// Statement id.
        id: InstrId,
        /// Target block.
        target: crate::types::BlockId,
        /// Source attribution.
        loc: SrcLoc,
    },
    /// Conditional branch. This is where the Intel PT simulator emits TNT
    /// (taken / not-taken) bits.
    CondBr {
        /// Statement id.
        id: InstrId,
        /// Condition operand (non-zero means taken).
        cond: Operand,
        /// Block on true.
        then_bb: crate::types::BlockId,
        /// Block on false.
        else_bb: crate::types::BlockId,
        /// Source attribution.
        loc: SrcLoc,
    },
    /// Function return.
    Ret {
        /// Statement id.
        id: InstrId,
        /// Optional return value.
        value: Option<Operand>,
        /// Source attribution.
        loc: SrcLoc,
    },
    /// Unreachable marker (executing it is a VM failure).
    Unreachable {
        /// Statement id.
        id: InstrId,
        /// Source attribution.
        loc: SrcLoc,
    },
}

impl Terminator {
    /// The statement id of the terminator.
    pub fn id(&self) -> InstrId {
        match self {
            Terminator::Br { id, .. }
            | Terminator::CondBr { id, .. }
            | Terminator::Ret { id, .. }
            | Terminator::Unreachable { id, .. } => *id,
        }
    }

    /// The source location of the terminator.
    pub fn loc(&self) -> SrcLoc {
        match self {
            Terminator::Br { loc, .. }
            | Terminator::CondBr { loc, .. }
            | Terminator::Ret { loc, .. }
            | Terminator::Unreachable { loc, .. } => *loc,
        }
    }

    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<crate::types::BlockId> {
        match self {
            Terminator::Br { target, .. } => vec![*target],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret { .. } | Terminator::Unreachable { .. } => vec![],
        }
    }

    /// Operands read by the terminator.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret { value: Some(v), .. } => vec![*v],
            _ => vec![],
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::fmt_op(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockId, FuncId, GlobalId, InstrId, VarId};

    #[test]
    fn def_and_uses() {
        let op = Op::Bin {
            dst: VarId(0),
            kind: BinKind::Add,
            a: Operand::Var(VarId(1)),
            b: Operand::Const(3),
        };
        assert_eq!(op.def(), Some(VarId(0)));
        assert_eq!(op.uses(), vec![Operand::Var(VarId(1)), Operand::Const(3)]);
    }

    #[test]
    fn store_has_no_def_but_uses_both() {
        let op = Op::Store {
            addr: Operand::Global(GlobalId(0)),
            value: Operand::Var(VarId(2)),
        };
        assert_eq!(op.def(), None);
        assert_eq!(op.uses().len(), 2);
        assert!(op.is_memory_access());
        assert!(op.is_memory_write());
    }

    #[test]
    fn load_is_read_not_write() {
        let op = Op::Load {
            dst: VarId(0),
            addr: Operand::Var(VarId(1)),
        };
        assert!(op.is_memory_access());
        assert!(!op.is_memory_write());
        assert_eq!(op.access_addr(), Some(Operand::Var(VarId(1))));
    }

    #[test]
    fn indirect_call_uses_pointer() {
        let op = Op::Call {
            dst: None,
            callee: Callee::Indirect(Operand::Var(VarId(9))),
            args: vec![Operand::Const(1)],
        };
        assert!(op.uses().contains(&Operand::Var(VarId(9))));
        assert!(op.is_call_like());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            id: InstrId(0),
            cond: Operand::Var(VarId(0)),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
            loc: crate::SrcLoc::UNKNOWN,
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let r = Terminator::Ret {
            id: InstrId(1),
            value: None,
            loc: crate::SrcLoc::UNKNOWN,
        };
        assert!(r.successors().is_empty());
    }

    #[test]
    fn mnemonic_roundtrip() {
        for k in [
            BinKind::Add,
            BinKind::Sub,
            BinKind::Mul,
            BinKind::Div,
            BinKind::Rem,
            BinKind::And,
            BinKind::Or,
            BinKind::Xor,
            BinKind::Shl,
            BinKind::Shr,
        ] {
            assert_eq!(BinKind::from_mnemonic(k.mnemonic()), Some(k));
        }
        for k in [
            CmpKind::Eq,
            CmpKind::Ne,
            CmpKind::Lt,
            CmpKind::Le,
            CmpKind::Gt,
            CmpKind::Ge,
        ] {
            assert_eq!(CmpKind::from_mnemonic(k.mnemonic()), Some(k));
        }
        assert_eq!(BinKind::from_mnemonic("bogus"), None);
    }

    #[test]
    fn cmp_eval() {
        assert_eq!(CmpKind::Lt.eval(1, 2), 1);
        assert_eq!(CmpKind::Lt.eval(2, 1), 0);
        assert_eq!(CmpKind::Eq.eval(5, 5), 1);
        assert_eq!(CmpKind::Ge.eval(-1, -1), 1);
    }

    #[test]
    fn spawn_is_call_like() {
        let op = Op::ThreadCreate {
            dst: Some(VarId(0)),
            routine: Callee::Direct(FuncId(1)),
            arg: Operand::Const(0),
        };
        assert!(op.is_call_like());
        assert_eq!(op.uses(), vec![Operand::Const(0)]);
    }
}
