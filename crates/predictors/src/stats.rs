//! Statistical ranking of failure predictors (precision, recall, Fβ).

use std::collections::{BTreeMap, BTreeSet};

use crate::pattern::{extract_predictors, Predictor, RunObservations};

/// The precision-favoring β the paper uses ("Gist favors precision by
/// setting β to 0.5", §3.3).
pub const DEFAULT_BETA: f64 = 0.5;

/// Occurrence counts and scores for one predictor across all runs.
#[derive(Clone, Debug, PartialEq)]
pub struct PredictorStats {
    /// The predictor.
    pub predictor: Predictor,
    /// Failing runs in which it occurred.
    pub in_failing: usize,
    /// Successful runs in which it occurred.
    pub in_successful: usize,
    /// Total failing runs.
    pub total_failing: usize,
    /// Total successful runs.
    pub total_successful: usize,
}

impl PredictorStats {
    /// Precision: of the runs predicted to fail (predictor present), how
    /// many failed?
    pub fn precision(&self) -> f64 {
        let predicted = self.in_failing + self.in_successful;
        if predicted == 0 {
            return 0.0;
        }
        self.in_failing as f64 / predicted as f64
    }

    /// Recall: of the failing runs, how many were predicted (predictor
    /// present)?
    pub fn recall(&self) -> f64 {
        if self.total_failing == 0 {
            return 0.0;
        }
        self.in_failing as f64 / self.total_failing as f64
    }

    /// Fβ = (1+β²)·P·R / (β²·P + R).
    pub fn f_measure(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 || b2 * p + r == 0.0 {
            return 0.0;
        }
        (1.0 + b2) * p * r / (b2 * p + r)
    }
}

/// Counts predictor occurrences across runs and ranks by Fβ (descending),
/// breaking ties toward predictors that occur in fewer successful runs.
pub fn rank(runs: &[RunObservations], beta: f64) -> Vec<PredictorStats> {
    let total_failing = runs.iter().filter(|r| r.failing).count();
    let total_successful = runs.len() - total_failing;
    let mut counts: BTreeMap<Predictor, (usize, usize)> = BTreeMap::new();
    for run in runs {
        let preds: BTreeSet<Predictor> = extract_predictors(run);
        for p in preds {
            let e = counts.entry(p).or_insert((0, 0));
            if run.failing {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
    }
    let mut stats: Vec<PredictorStats> = counts
        .into_iter()
        .map(|(predictor, (in_failing, in_successful))| PredictorStats {
            predictor,
            in_failing,
            in_successful,
            total_failing,
            total_successful,
        })
        .collect();
    stats.sort_by(|a, b| {
        b.f_measure(beta)
            .partial_cmp(&a.f_measure(beta))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.in_successful.cmp(&b.in_successful))
            .then(a.predictor.cmp(&b.predictor))
    });
    stats
}

/// The best predictor per category ("the failure sketch presents the
/// developer with the highest-ranked failure predictors for each type",
/// §3.3): order (atomicity/race), branch, value.
pub fn top_by_category(
    stats: &[PredictorStats],
    beta: f64,
) -> BTreeMap<&'static str, PredictorStats> {
    let mut out: BTreeMap<&'static str, PredictorStats> = BTreeMap::new();
    for s in stats {
        let cat = s.predictor.category();
        if s.f_measure(beta) <= 0.0 {
            continue;
        }
        if !out.contains_key(cat) {
            out.insert(cat, s.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Access, Rw};
    use gist_ir::InstrId;

    fn run_with_value(failing: bool, value: i64) -> RunObservations {
        RunObservations {
            failing,
            values: vec![(InstrId(1), value)],
            ..Default::default()
        }
    }

    #[test]
    fn perfect_predictor_scores_one() {
        // value==0 in every failing run, never in successful runs.
        let runs = vec![
            run_with_value(true, 0),
            run_with_value(true, 0),
            run_with_value(false, 7),
            run_with_value(false, 8),
        ];
        let stats = rank(&runs, DEFAULT_BETA);
        let top = &stats[0];
        assert_eq!(
            top.predictor,
            Predictor::Value {
                stmt: InstrId(1),
                value: 0
            }
        );
        assert!((top.precision() - 1.0).abs() < 1e-9);
        assert!((top.recall() - 1.0).abs() < 1e-9);
        assert!((top.f_measure(DEFAULT_BETA) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_predictor_ranks_below_clean_one() {
        // "value 0" occurs in both failing runs; "value 5" occurs in one
        // failing and one successful run.
        let runs = vec![
            RunObservations {
                failing: true,
                values: vec![(InstrId(1), 0), (InstrId(2), 5)],
                ..Default::default()
            },
            RunObservations {
                failing: true,
                values: vec![(InstrId(1), 0)],
                ..Default::default()
            },
            RunObservations {
                failing: false,
                values: vec![(InstrId(2), 5)],
                ..Default::default()
            },
        ];
        let stats = rank(&runs, DEFAULT_BETA);
        let f_of = |stmt: u32, value: i64| {
            stats
                .iter()
                .find(|s| {
                    s.predictor
                        == Predictor::Value {
                            stmt: InstrId(stmt),
                            value,
                        }
                })
                .map(|s| s.f_measure(DEFAULT_BETA))
                .unwrap()
        };
        assert_eq!(
            stats[0].predictor.category(),
            "value",
            "top predictor is a value predicate: {:?}",
            stats[0].predictor
        );
        assert!(
            f_of(1, 0) > f_of(2, 5),
            "the clean predictor outranks the noisy one"
        );
    }

    #[test]
    fn beta_half_favors_precision() {
        // Predictor A: P=1.0, R=0.5. Predictor B: P=0.5, R=1.0.
        let a = PredictorStats {
            predictor: Predictor::Value {
                stmt: InstrId(1),
                value: 0,
            },
            in_failing: 1,
            in_successful: 0,
            total_failing: 2,
            total_successful: 2,
        };
        let b = PredictorStats {
            predictor: Predictor::Value {
                stmt: InstrId(2),
                value: 0,
            },
            in_failing: 2,
            in_successful: 2,
            total_failing: 2,
            total_successful: 2,
        };
        assert!(
            a.f_measure(0.5) > b.f_measure(0.5),
            "β=0.5 prefers the precise predictor"
        );
        assert!(
            a.f_measure(2.0) < b.f_measure(2.0),
            "β=2 would prefer the high-recall predictor"
        );
    }

    #[test]
    fn concurrency_predictor_separates_schedules() {
        // Failing runs contain the RWR interleaving; successful runs have
        // the same accesses without the remote write in between.
        let failing = RunObservations {
            failing: true,
            accesses: vec![
                Access {
                    seq: 1,
                    tid: 1,
                    iid: InstrId(10),
                    addr: 8,
                    rw: Rw::R,
                    value: 1,
                },
                Access {
                    seq: 2,
                    tid: 2,
                    iid: InstrId(20),
                    addr: 8,
                    rw: Rw::W,
                    value: 0,
                },
                Access {
                    seq: 3,
                    tid: 1,
                    iid: InstrId(11),
                    addr: 8,
                    rw: Rw::R,
                    value: 0,
                },
            ],
            ..Default::default()
        };
        let successful = RunObservations {
            failing: false,
            accesses: vec![
                Access {
                    seq: 1,
                    tid: 1,
                    iid: InstrId(10),
                    addr: 8,
                    rw: Rw::R,
                    value: 1,
                },
                Access {
                    seq: 2,
                    tid: 1,
                    iid: InstrId(11),
                    addr: 8,
                    rw: Rw::R,
                    value: 1,
                },
                Access {
                    seq: 3,
                    tid: 2,
                    iid: InstrId(20),
                    addr: 8,
                    rw: Rw::W,
                    value: 0,
                },
            ],
            ..Default::default()
        };
        let runs = vec![failing.clone(), failing, successful.clone(), successful];
        let stats = rank(&runs, DEFAULT_BETA);
        let top = &stats[0];
        assert!(
            matches!(top.predictor, Predictor::Atomicity { .. }),
            "top predictor should be the atomicity violation, got {:?}",
            top.predictor
        );
        assert!((top.f_measure(DEFAULT_BETA) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_by_category_returns_one_each() {
        let runs = vec![
            RunObservations {
                failing: true,
                branches: vec![(InstrId(3), true)],
                values: vec![(InstrId(1), 0)],
                ..Default::default()
            },
            RunObservations {
                failing: false,
                branches: vec![(InstrId(3), false)],
                values: vec![(InstrId(1), 9)],
                ..Default::default()
            },
        ];
        let stats = rank(&runs, DEFAULT_BETA);
        let tops = top_by_category(&stats, DEFAULT_BETA);
        assert!(tops.contains_key("branch"));
        assert!(tops.contains_key("value"));
        assert!(!tops.contains_key("order"));
    }

    #[test]
    fn empty_runs_produce_no_stats() {
        let stats = rank(&[], DEFAULT_BETA);
        assert!(stats.is_empty());
    }

    #[test]
    fn predictor_absent_from_failing_runs_scores_zero() {
        let runs = vec![run_with_value(true, 1), run_with_value(false, 2)];
        let stats = rank(&runs, DEFAULT_BETA);
        let bad = stats
            .iter()
            .find(|s| {
                s.predictor
                    == Predictor::Value {
                        stmt: InstrId(1),
                        value: 2,
                    }
            })
            .unwrap();
        assert_eq!(bad.f_measure(DEFAULT_BETA), 0.0);
        // And it ranks last.
        assert_eq!(stats.last().unwrap().predictor, bad.predictor);
    }
}
