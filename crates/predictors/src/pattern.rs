//! Predictor extraction from per-run observations.

use gist_ir::{InstrId, Value};
use std::collections::BTreeSet;

/// Read/write flavor of one logged access (mirrors the watchpoint log).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Rw {
    /// Read.
    R,
    /// Write.
    W,
}

/// One shared-memory access from the watchpoint hit log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Global order (total across threads — §3.2.3).
    pub seq: u64,
    /// Accessing thread.
    pub tid: u32,
    /// Accessing statement.
    pub iid: InstrId,
    /// Accessed address.
    pub addr: u64,
    /// Read or write.
    pub rw: Rw,
    /// Value read/written.
    pub value: Value,
}

/// The four single-variable atomicity-violation patterns of Fig. 5.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum AvPattern {
    /// Read, remote Write, Read.
    Rwr,
    /// Write, remote Write, Read.
    Wwr,
    /// Read, remote Write, Write.
    Rww,
    /// Write, remote Read, Write.
    Wrw,
}

impl AvPattern {
    /// Classifies a (local, remote, local) kind triple.
    pub fn classify(a: Rw, b: Rw, c: Rw) -> Option<AvPattern> {
        match (a, b, c) {
            (Rw::R, Rw::W, Rw::R) => Some(AvPattern::Rwr),
            (Rw::W, Rw::W, Rw::R) => Some(AvPattern::Wwr),
            (Rw::R, Rw::W, Rw::W) => Some(AvPattern::Rww),
            (Rw::W, Rw::R, Rw::W) => Some(AvPattern::Wrw),
            _ => None,
        }
    }

    /// Display name ("RWR" etc.).
    pub fn name(self) -> &'static str {
        match self {
            AvPattern::Rwr => "RWR",
            AvPattern::Wwr => "WWR",
            AvPattern::Rww => "RWW",
            AvPattern::Wrw => "WRW",
        }
    }
}

/// The data-race / order-violation patterns of Fig. 5 (WW, WR, RW).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RacePattern {
    /// Write then write.
    Ww,
    /// Write then read.
    Wr,
    /// Read then write.
    Rw,
}

impl RacePattern {
    /// Classifies an ordered conflicting pair.
    pub fn classify(a: Rw, b: Rw) -> Option<RacePattern> {
        match (a, b) {
            (Rw::W, Rw::W) => Some(RacePattern::Ww),
            (Rw::W, Rw::R) => Some(RacePattern::Wr),
            (Rw::R, Rw::W) => Some(RacePattern::Rw),
            (Rw::R, Rw::R) => None,
        }
    }

    /// Display name ("WR" etc.).
    pub fn name(self) -> &'static str {
        match self {
            RacePattern::Ww => "WW",
            RacePattern::Wr => "WR",
            RacePattern::Rw => "RW",
        }
    }
}

/// A failure predictor: a predicate over one run that, when true, predicts
/// the failure (§3.3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Predictor {
    /// An atomicity-violation instance: local/remote/local statements.
    Atomicity {
        /// Which of the four patterns.
        pattern: AvPattern,
        /// First local access statement.
        first: InstrId,
        /// Remote (interleaved) access statement.
        remote: InstrId,
        /// Second local access statement.
        second: InstrId,
    },
    /// A race/order instance: two conflicting statements in this order.
    Race {
        /// Which pair pattern.
        pattern: RacePattern,
        /// Earlier access statement.
        first: InstrId,
        /// Later access statement.
        second: InstrId,
    },
    /// A branch at `stmt` went this way.
    Branch {
        /// The conditional branch statement.
        stmt: InstrId,
        /// Direction.
        taken: bool,
    },
    /// Statement `stmt` observed this data value.
    Value {
        /// The access statement.
        stmt: InstrId,
        /// The observed value.
        value: Value,
    },
    /// Statement `stmt` observed a value in this range bucket.
    ///
    /// Range/inequality predicates are the paper's stated future work
    /// ("we plan to track range and inequality predicates in Gist to
    /// provide richer information on data values", §6): exact values can
    /// be too specific (a dangling pointer has a different address every
    /// run, but is always nonzero-and-invalid; a corrupted length is
    /// *some* negative number). Buckets generalize across runs.
    ValueRange {
        /// The access statement.
        stmt: InstrId,
        /// The range bucket the value fell into.
        range: ValueRange,
    },
}

impl Predictor {
    /// Coarse category (the sketch shows the top predictor per category:
    /// "branches, data values, and statement orders", §3.3).
    pub fn category(&self) -> &'static str {
        match self {
            Predictor::Atomicity { .. } | Predictor::Race { .. } => "order",
            Predictor::Branch { .. } => "branch",
            Predictor::Value { .. } | Predictor::ValueRange { .. } => "value",
        }
    }
}

/// Coarse value buckets for range/inequality predicates (paper §6 future
/// work, implemented here as an extension).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ValueRange {
    /// Exactly zero (NULL pointers, cleared flags).
    Zero,
    /// Strictly negative (underflowed counters).
    Negative,
    /// In `1..=255` (small counts, characters).
    SmallPositive,
    /// Greater than 255 (large values, pointers).
    LargePositive,
}

impl ValueRange {
    /// Buckets a value.
    pub fn of(v: Value) -> ValueRange {
        if v == 0 {
            ValueRange::Zero
        } else if v < 0 {
            ValueRange::Negative
        } else if v <= 255 {
            ValueRange::SmallPositive
        } else {
            ValueRange::LargePositive
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ValueRange::Zero => "== 0",
            ValueRange::Negative => "< 0",
            ValueRange::SmallPositive => "in 1..=255",
            ValueRange::LargePositive => "> 255",
        }
    }
}

/// Everything Gist's server collects from one production run for the
/// statistical analysis.
#[derive(Clone, Debug, Default)]
pub struct RunObservations {
    /// Did this run exhibit the failure under diagnosis?
    pub failing: bool,
    /// Watchpoint hit log (globally ordered).
    pub accesses: Vec<Access>,
    /// Branch outcomes at tracked statements.
    pub branches: Vec<(InstrId, bool)>,
    /// Values observed at tracked statements.
    pub values: Vec<(InstrId, Value)>,
}

/// Extracts the set of predictor instances present in one run.
///
/// Concurrency patterns are found per address in the globally ordered
/// access log, exactly as in the paper's Fig. 6 example: for every access
/// `b`, the latest earlier conflicting access from another thread forms a
/// race pair; every pair of consecutive same-thread accesses with a remote
/// access in between forms an atomicity-violation candidate.
pub fn extract_predictors(obs: &RunObservations) -> BTreeSet<Predictor> {
    let mut out = BTreeSet::new();
    // Group accesses by address, keeping global order.
    let mut addrs: Vec<u64> = obs.accesses.iter().map(|a| a.addr).collect();
    addrs.sort_unstable();
    addrs.dedup();
    for addr in addrs {
        let seq: Vec<&Access> = obs.accesses.iter().filter(|a| a.addr == addr).collect();
        // Race pairs.
        for (i, b) in seq.iter().enumerate() {
            if let Some(a) = seq[..i].iter().rev().find(|a| a.tid != b.tid) {
                if let Some(pattern) = RacePattern::classify(a.rw, b.rw) {
                    out.insert(Predictor::Race {
                        pattern,
                        first: a.iid,
                        second: b.iid,
                    });
                }
            }
        }
        // Atomicity-violation triples: consecutive same-thread pairs with
        // an interleaved remote access.
        for (i, a) in seq.iter().enumerate() {
            // Find the next access by the same thread.
            let mut next_same: Option<usize> = None;
            for (j, c) in seq.iter().enumerate().skip(i + 1) {
                if c.tid == a.tid {
                    next_same = Some(j);
                    break;
                }
            }
            if let Some(j) = next_same {
                let c = seq[j];
                for b in &seq[i + 1..j] {
                    if b.tid == a.tid {
                        continue;
                    }
                    if let Some(pattern) = AvPattern::classify(a.rw, b.rw, c.rw) {
                        out.insert(Predictor::Atomicity {
                            pattern,
                            first: a.iid,
                            remote: b.iid,
                            second: c.iid,
                        });
                    }
                }
            }
        }
    }
    for &(stmt, taken) in &obs.branches {
        out.insert(Predictor::Branch { stmt, taken });
    }
    for &(stmt, value) in &obs.values {
        out.insert(Predictor::Value { stmt, value });
        out.insert(Predictor::ValueRange {
            stmt,
            range: ValueRange::of(value),
        });
    }
    // Values observed by watchpoints are value (and range) predictors too.
    for a in &obs.accesses {
        out.insert(Predictor::Value {
            stmt: a.iid,
            value: a.value,
        });
        out.insert(Predictor::ValueRange {
            stmt: a.iid,
            range: ValueRange::of(a.value),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(seq: u64, tid: u32, iid: u32, rw: Rw) -> Access {
        Access {
            seq,
            tid,
            iid: InstrId(iid),
            addr: 0x10,
            rw,
            value: 0,
        }
    }

    /// The paper's Fig. 6: T1 reads x; T2 writes x; T1 reads x twice.
    /// Expected: one RWR atomicity violation and two WR races.
    #[test]
    fn figure6_example() {
        let obs = RunObservations {
            failing: true,
            accesses: vec![
                acc(1, 1, 100, Rw::R), // T1: read x
                acc(2, 2, 200, Rw::W), // T2: write x
                acc(3, 1, 101, Rw::R), // T1: read x (1)
                acc(4, 1, 102, Rw::R), // T1: read x (2)
            ],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        let rwr = preds.iter().any(|p| {
            matches!(
                p,
                Predictor::Atomicity {
                    pattern: AvPattern::Rwr,
                    first: InstrId(100),
                    remote: InstrId(200),
                    second: InstrId(101),
                }
            )
        });
        assert!(rwr, "RWR of Fig. 6(b): {preds:?}");
        let wr1 = preds.contains(&Predictor::Race {
            pattern: RacePattern::Wr,
            first: InstrId(200),
            second: InstrId(101),
        });
        let wr2 = preds.contains(&Predictor::Race {
            pattern: RacePattern::Wr,
            first: InstrId(200),
            second: InstrId(102),
        });
        assert!(wr1, "WR race of Fig. 6(c)");
        assert!(wr2, "WR race of Fig. 6(d)");
        // Also the RW race from T1's first read to T2's write.
        assert!(preds.contains(&Predictor::Race {
            pattern: RacePattern::Rw,
            first: InstrId(100),
            second: InstrId(200),
        }));
    }

    #[test]
    fn no_remote_interleaving_no_patterns() {
        let obs = RunObservations {
            failing: false,
            accesses: vec![
                acc(1, 1, 100, Rw::R),
                acc(2, 1, 101, Rw::W),
                acc(3, 1, 102, Rw::R),
            ],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(
            !preds
                .iter()
                .any(|p| matches!(p, Predictor::Atomicity { .. } | Predictor::Race { .. })),
            "single-thread log has no concurrency predictors"
        );
    }

    #[test]
    fn read_read_is_not_a_race() {
        let obs = RunObservations {
            failing: false,
            accesses: vec![acc(1, 1, 100, Rw::R), acc(2, 2, 200, Rw::R)],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(!preds.iter().any(|p| matches!(p, Predictor::Race { .. })));
    }

    #[test]
    fn wrw_pattern_detected() {
        let obs = RunObservations {
            failing: true,
            accesses: vec![
                acc(1, 1, 100, Rw::W),
                acc(2, 2, 200, Rw::R),
                acc(3, 1, 101, Rw::W),
            ],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(preds.iter().any(|p| matches!(
            p,
            Predictor::Atomicity {
                pattern: AvPattern::Wrw,
                ..
            }
        )));
    }

    #[test]
    fn distinct_addresses_do_not_mix() {
        let mut a1 = acc(1, 1, 100, Rw::R);
        let mut a2 = acc(2, 2, 200, Rw::W);
        let mut a3 = acc(3, 1, 101, Rw::R);
        a1.addr = 0x10;
        a2.addr = 0x20; // different variable
        a3.addr = 0x10;
        let obs = RunObservations {
            failing: true,
            accesses: vec![a1, a2, a3],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(
            !preds
                .iter()
                .any(|p| matches!(p, Predictor::Atomicity { .. } | Predictor::Race { .. })),
            "accesses to different variables form no single-variable pattern"
        );
    }

    #[test]
    fn branch_and_value_predictors_extracted() {
        let obs = RunObservations {
            failing: true,
            branches: vec![(InstrId(5), true), (InstrId(5), false)],
            values: vec![(InstrId(9), 0)],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(preds.contains(&Predictor::Branch {
            stmt: InstrId(5),
            taken: true
        }));
        assert!(preds.contains(&Predictor::Branch {
            stmt: InstrId(5),
            taken: false
        }));
        assert!(preds.contains(&Predictor::Value {
            stmt: InstrId(9),
            value: 0
        }));
    }

    #[test]
    fn access_values_become_value_predictors() {
        let mut a = acc(1, 1, 100, Rw::R);
        a.value = 42;
        let obs = RunObservations {
            failing: false,
            accesses: vec![a],
            ..Default::default()
        };
        let preds = extract_predictors(&obs);
        assert!(preds.contains(&Predictor::Value {
            stmt: InstrId(100),
            value: 42
        }));
    }

    #[test]
    fn value_ranges_bucket_correctly() {
        assert_eq!(ValueRange::of(0), ValueRange::Zero);
        assert_eq!(ValueRange::of(-7), ValueRange::Negative);
        assert_eq!(ValueRange::of(1), ValueRange::SmallPositive);
        assert_eq!(ValueRange::of(255), ValueRange::SmallPositive);
        assert_eq!(ValueRange::of(256), ValueRange::LargePositive);
        assert_eq!(ValueRange::Zero.name(), "== 0");
    }

    #[test]
    fn range_predictors_generalize_across_exact_values() {
        // Two failing runs observe *different* dangling addresses; the
        // exact-value predictors differ but the range predictor is shared.
        let run = |v: i64| RunObservations {
            failing: true,
            values: vec![(InstrId(4), v)],
            ..Default::default()
        };
        let a = extract_predictors(&run(0x0010_0001));
        let b = extract_predictors(&run(0x0020_0099));
        let shared: Vec<_> = a.intersection(&b).collect();
        assert!(shared.contains(&&Predictor::ValueRange {
            stmt: InstrId(4),
            range: ValueRange::LargePositive
        }));
        // The exact values do not intersect.
        assert!(!shared.iter().any(|p| matches!(p, Predictor::Value { .. })));
    }

    #[test]
    fn categories() {
        assert_eq!(
            Predictor::Branch {
                stmt: InstrId(0),
                taken: true
            }
            .category(),
            "branch"
        );
        assert_eq!(
            Predictor::Race {
                pattern: RacePattern::Ww,
                first: InstrId(0),
                second: InstrId(1)
            }
            .category(),
            "order"
        );
    }
}
