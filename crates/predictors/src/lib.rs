//! Failure predictors and their statistical ranking (paper §3.3).
//!
//! Gist "follows a similar approach to cooperative bug isolation, which
//! uses statistical methods to correlate failure predictors to failures".
//! For sequential programs the predictors are **branches taken** and
//! **data values computed**; for multithreaded programs, additionally the
//! **single-variable atomicity-violation patterns** RWR / WWR / RWW / WRW
//! and the **data-race patterns** WW / WR / RW of Fig. 5/6.
//!
//! Predictors are ranked by the F-measure Fβ = (1+β²)·P·R / (β²·P+R) with
//! **β = 0.5**, favoring precision, "because its primary aim is to not
//! confuse the developers with potentially erroneous failure predictors".
//!
//! Unlike CCI/PBI, the predictors carry the distinct pattern kind (an RWR
//! atomicity violation is distinguishable from WWR), and unlike CBI, exact
//! data values are tracked rather than sampled ranges — both differences
//! are called out at the end of §3.3.

pub mod pattern;
pub mod stats;

pub use pattern::{extract_predictors, Access, AvPattern, Predictor, RacePattern, RunObservations};
pub use stats::{rank, top_by_category, PredictorStats};
