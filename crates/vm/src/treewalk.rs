//! The legacy tree-walking interpreter, kept as the differential oracle
//! for the precompiled engine.
//!
//! This is the pre-compilation execution engine, preserved byte-for-byte in
//! behavior: it re-resolves `function -> block -> instr` on every step and
//! clones each `Op` before executing it. [`crate::Vm`] replaced it on the
//! hot path with the flat stream from [`crate::compiled`]; this module is
//! compiled only under the `treewalk` cargo feature so the
//! compiled-vs-treewalk differential test (and nothing shipped) can run
//! the whole bugbase through both engines and assert identical failures,
//! event streams, and watchpoint hits.
//!
//! Keep the execution semantics here frozen. If the event protocol must
//! change, change both engines and let the differential test arbitrate.

use gist_ir::{BinKind, Callee, FuncId, InstrId, Op, Operand, Program, Terminator, Value, VarId};

use crate::event::{AccessKind, Event, Observer};
use crate::failure::{FailureKind, FailureReport, StackFrame};
use crate::mem::Memory;
use crate::thread::{BlockReason, Frame, Thread, ThreadState};
use crate::vm::{Input, RunOutcome, RunResult, VmConfig};

/// The legacy tree-walking interpreter.
pub struct TreeWalkVm<'p> {
    program: &'p Program,
    config: VmConfig,
    mem: Memory,
    threads: Vec<Thread>,
    /// Mutex cell address -> owner tid.
    mutex_owners: std::collections::HashMap<u64, u32>,
    /// Materialized input values (after string interning).
    input_values: Vec<Value>,
    output: Vec<Value>,
    seq: u64,
    steps: u64,
    sched_picks: u64,
    preemptions: u64,
    last_picked: Option<u32>,
    retired_per_core: Vec<u64>,
    branches: u64,
    indirect_transfers: u64,
    mem_accesses: u64,
}

/// Signal raised by one statement's execution.
enum Exec {
    /// Statement completed; advance past it.
    Continue,
    /// Control already transferred (branch, call, ret); don't advance.
    Jumped,
    /// The thread must block and retry this statement when woken.
    Block(BlockReason),
    /// The run fails here.
    Fail(FailureKind),
    /// The thread exited.
    Exited,
}

impl<'p> TreeWalkVm<'p> {
    /// Creates a VM for one run of `program`.
    pub fn new(program: &'p Program, config: VmConfig) -> TreeWalkVm<'p> {
        let mut mem = Memory::new(program);
        let input_values = config
            .inputs
            .iter()
            .map(|i| match i {
                Input::Scalar(v) => *v,
                Input::Str(chars) => mem.intern_string(chars) as Value,
            })
            .collect();
        let entry = program.entry;
        let nvars = program.function(entry).num_vars();
        let threads = vec![Thread::new(0, 0, entry, nvars, &[])];
        let cores = config.num_cores.max(1);
        TreeWalkVm {
            program,
            config,
            mem,
            threads,
            mutex_owners: std::collections::HashMap::new(),
            input_values,
            output: Vec::new(),
            seq: 0,
            steps: 0,
            sched_picks: 0,
            preemptions: 0,
            last_picked: None,
            retired_per_core: vec![0; cores as usize],
            branches: 0,
            indirect_transfers: 0,
            mem_accesses: 0,
        }
    }

    /// Read-only view of memory (for tests and diagnostics).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn emit(&mut self, observers: &mut [&mut dyn Observer], ev: Event) {
        for o in observers.iter_mut() {
            o.on_event(&ev);
        }
    }

    /// Runs the program to completion or failure using the configured
    /// scheduler.
    pub fn run(&mut self, observers: &mut [&mut dyn Observer]) -> RunResult {
        let mut scheduler = self.config.scheduler.build();
        self.run_with(scheduler.as_mut(), observers)
    }

    /// Runs the program with an externally supplied scheduler (used by the
    /// record/replay baseline, which records every scheduling pick).
    pub fn run_with(
        &mut self,
        scheduler: &mut dyn crate::sched::Scheduler,
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        let entry = self.program.entry;
        {
            let seq = self.next_seq();
            self.emit(
                observers,
                Event::Enter {
                    seq,
                    tid: 0,
                    core: 0,
                    func: entry,
                },
            );
        }
        loop {
            let runnable: Vec<u32> = self
                .threads
                .iter()
                .filter(|t| t.is_runnable())
                .map(|t| t.tid)
                .collect();
            if runnable.is_empty() {
                let blocked: Vec<&Thread> = self
                    .threads
                    .iter()
                    .filter(|t| matches!(t.state, ThreadState::Blocked(_)))
                    .collect();
                if blocked.is_empty() {
                    // Everything finished.
                    return self.result(RunOutcome::Finished);
                }
                // Deadlock at the first blocked thread's current statement.
                let t = blocked[0].tid;
                let iid = self.current_stmt(t);
                let report = self.report(t, iid, FailureKind::Deadlock);
                let (core, seq) = (self.threads[t as usize].core, self.next_seq());
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid: t,
                        core,
                        iid,
                    },
                );
                return self.result(RunOutcome::Failed(report));
            }
            if self.steps >= self.config.max_steps {
                let t = runnable[0];
                let iid = self.current_stmt(t);
                let report = self.report(t, iid, FailureKind::Hang);
                let (core, seq) = (self.threads[t as usize].core, self.next_seq());
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid: t,
                        core,
                        iid,
                    },
                );
                return self.result(RunOutcome::Failed(report));
            }
            let tid = scheduler.pick(&runnable, self.steps);
            debug_assert!(runnable.contains(&tid));
            self.sched_picks += 1;
            if let Some(prev) = self.last_picked {
                if prev != tid && runnable.contains(&prev) {
                    self.preemptions += 1;
                }
            }
            self.last_picked = Some(tid);
            if let Some(outcome) = self.step_thread(tid, observers) {
                return self.result(outcome);
            }
        }
    }

    fn result(&self, outcome: RunOutcome) -> RunResult {
        // Metrics are flushed in bulk here, once per run, so the per-step
        // hot path carries no atomic traffic.
        gist_obs::counter!("vm.runs").inc();
        gist_obs::counter!("vm.instr_retired").add(self.steps);
        gist_obs::counter!("vm.sched_picks").add(self.sched_picks);
        gist_obs::counter!("vm.preemptions").add(self.preemptions);
        gist_obs::counter!("vm.branches").add(self.branches);
        gist_obs::counter!("vm.mem_accesses").add(self.mem_accesses);
        gist_obs::counter!("vm.threads_spawned").add(self.threads.len() as u64);
        match &outcome {
            RunOutcome::Failed(report) => {
                gist_obs::counter_by_name(report.kind.metric_name()).inc()
            }
            RunOutcome::Finished => gist_obs::counter!("vm.runs_finished").inc(),
        }
        RunResult {
            outcome,
            output: self.output.clone(),
            steps: self.steps,
            retired_per_core: self.retired_per_core.clone(),
            branches: self.branches,
            indirect_transfers: self.indirect_transfers,
            mem_accesses: self.mem_accesses,
            threads: self.threads.len() as u32,
            sched_picks: self.sched_picks,
            preemptions: self.preemptions,
        }
    }

    /// The statement the thread will execute next.
    fn current_stmt(&self, tid: u32) -> InstrId {
        let frame = self.threads[tid as usize].top();
        let block = self.program.function(frame.func).block(frame.block);
        if frame.index < block.instrs.len() {
            block.instrs[frame.index].id
        } else {
            block.term.id()
        }
    }

    fn report(&self, tid: u32, iid: InstrId, kind: FailureKind) -> FailureReport {
        let t = &self.threads[tid as usize];
        let mut stack = Vec::new();
        // Innermost first: current statement, then callsites outward.
        for (i, f) in t.frames.iter().enumerate().rev() {
            let frame_iid = if i == t.frames.len() - 1 {
                iid
            } else {
                t.frames[i + 1].callsite.unwrap_or(iid)
            };
            stack.push(StackFrame {
                func: f.func,
                iid: frame_iid,
            });
        }
        FailureReport {
            program: self.program.name.clone(),
            kind,
            failing_stmt: iid,
            tid,
            stack,
            loc: self.program.stmt_loc(iid),
        }
    }

    /// Executes one statement of thread `tid`. Returns `Some(outcome)` if
    /// the run ended.
    fn step_thread(&mut self, tid: u32, observers: &mut [&mut dyn Observer]) -> Option<RunOutcome> {
        let iid = self.current_stmt(tid);
        let core = self.threads[tid as usize].core;
        let frame = self.threads[tid as usize].top();
        let func = frame.func;
        let block = frame.block;
        let index = frame.index;
        let b = self.program.function(func).block(block);

        // Two-phase memory accesses: the first scheduling step of an
        // access computes its address and emits PreAccess (the watchpoint
        // arm point); the access itself executes on a later step, so other
        // threads may interleave in between — as on real hardware.
        if index < b.instrs.len() && !self.threads[tid as usize].top().pre_access_done {
            if let Some(addr_op) = b.instrs[index].op.access_addr() {
                let kind = if b.instrs[index].op.is_memory_write() {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let addr = self.eval(tid, addr_op) as u64;
                self.threads[tid as usize].top_mut().pre_access_done = true;
                if addr != 0 {
                    let seq = self.next_seq();
                    self.emit(
                        observers,
                        Event::PreAccess {
                            seq,
                            tid,
                            core,
                            iid,
                            kind,
                            addr,
                            is_stack: Memory::is_stack_addr(addr),
                        },
                    );
                    return None;
                }
                // NULL address: the access will fault; no arm point.
            }
        }

        let exec = if index < b.instrs.len() {
            let op = b.instrs[index].op.clone();
            self.exec_op(tid, iid, &op, observers)
        } else {
            let term = b.term.clone();
            self.exec_term(tid, &term, observers)
        };

        match exec {
            Exec::Block(reason) => {
                // Do not retire the statement; the thread retries it.
                self.threads[tid as usize].state = ThreadState::Blocked(reason);
                return None;
            }
            Exec::Fail(kind) => {
                self.retire(tid, core, iid, observers);
                let report = self.report(tid, iid, kind);
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid,
                        core,
                        iid,
                    },
                );
                return Some(RunOutcome::Failed(report));
            }
            Exec::Continue => {
                self.retire(tid, core, iid, observers);
                let f = self.threads[tid as usize].top_mut();
                f.index += 1;
                f.pre_access_done = false;
            }
            Exec::Jumped => {
                self.retire(tid, core, iid, observers);
                self.threads[tid as usize].top_mut().pre_access_done = false;
            }
            Exec::Exited => {
                self.retire(tid, core, iid, observers);
                self.threads[tid as usize].state = ThreadState::Finished;
                let seq = self.next_seq();
                self.emit(observers, Event::ThreadExit { seq, tid, core });
                self.wake_joiners(tid);
            }
        }
        None
    }

    fn retire(&mut self, tid: u32, core: u32, iid: InstrId, observers: &mut [&mut dyn Observer]) {
        self.steps += 1;
        self.retired_per_core[core as usize] += 1;
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Retired {
                seq,
                tid,
                core,
                iid,
            },
        );
    }

    fn eval(&self, tid: u32, op: Operand) -> Value {
        match op {
            Operand::Const(v) => v,
            Operand::Global(g) => self.mem.global_base(g) as Value,
            Operand::Var(v) => self.threads[tid as usize].top().vars[v.index()].unwrap_or(0),
        }
    }

    fn set_var(&mut self, tid: u32, var: VarId, value: Value) {
        self.threads[tid as usize].top_mut().vars[var.index()] = Some(value);
    }

    fn emit_mem(
        &mut self,
        observers: &mut [&mut dyn Observer],
        tid: u32,
        iid: InstrId,
        kind: AccessKind,
        addr: u64,
        value: Value,
    ) {
        self.mem_accesses += 1;
        let core = self.threads[tid as usize].core;
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Mem {
                seq,
                tid,
                core,
                iid,
                kind,
                addr,
                value,
                is_stack: Memory::is_stack_addr(addr),
            },
        );
    }

    fn exec_op(
        &mut self,
        tid: u32,
        iid: InstrId,
        op: &Op,
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        match op {
            Op::Const { dst, value } => {
                self.set_var(tid, *dst, *value);
                Exec::Continue
            }
            Op::Bin { dst, kind, a, b } => {
                let (a, b) = (self.eval(tid, *a), self.eval(tid, *b));
                let r = match kind {
                    BinKind::Add => a.wrapping_add(b),
                    BinKind::Sub => a.wrapping_sub(b),
                    BinKind::Mul => a.wrapping_mul(b),
                    BinKind::Div => {
                        if b == 0 {
                            return Exec::Fail(FailureKind::DivByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinKind::Rem => {
                        if b == 0 {
                            return Exec::Fail(FailureKind::DivByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    BinKind::And => a & b,
                    BinKind::Or => a | b,
                    BinKind::Xor => a ^ b,
                    BinKind::Shl => a.wrapping_shl(b as u32 & 63),
                    BinKind::Shr => a.wrapping_shr(b as u32 & 63),
                };
                self.set_var(tid, *dst, r);
                Exec::Continue
            }
            Op::Cmp { dst, kind, a, b } => {
                let r = kind.eval(self.eval(tid, *a), self.eval(tid, *b));
                self.set_var(tid, *dst, r);
                Exec::Continue
            }
            Op::Load { dst, addr } => {
                let a = self.eval(tid, *addr) as u64;
                match self.mem.load(a) {
                    Ok(v) => {
                        self.emit_mem(observers, tid, iid, AccessKind::Read, a, v);
                        self.set_var(tid, *dst, v);
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            Op::Store { addr, value } => {
                let a = self.eval(tid, *addr) as u64;
                let v = self.eval(tid, *value);
                match self.mem.store(a, v) {
                    Ok(()) => {
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, v);
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            Op::Gep { dst, base, offset } => {
                let r = self.eval(tid, *base).wrapping_add(self.eval(tid, *offset));
                self.set_var(tid, *dst, r);
                Exec::Continue
            }
            Op::Alloc { dst, size } => {
                let n = self.eval(tid, *size).max(0) as u64;
                let base = self.mem.heap_alloc(n);
                self.set_var(tid, *dst, base as Value);
                Exec::Continue
            }
            Op::StackAlloc { dst, size } => {
                let n = self.eval(tid, *size).max(0) as u64;
                let base = self.mem.stack_alloc(tid, n);
                self.set_var(tid, *dst, base as Value);
                Exec::Continue
            }
            Op::Free { addr } => {
                let a = self.eval(tid, *addr) as u64;
                match self.mem.heap_free(a) {
                    Ok(()) => {
                        if a != 0 {
                            self.emit_mem(observers, tid, iid, AccessKind::Write, a, 0);
                        }
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            Op::Call { dst, callee, args } => self.do_call(tid, iid, *dst, callee, args, observers),
            Op::FuncAddr { dst, func } => {
                let v = Program::FUNC_ADDR_BASE + func.index() as Value;
                self.set_var(tid, *dst, v);
                Exec::Continue
            }
            Op::ThreadCreate { dst, routine, arg } => {
                let target = match self.resolve_callee(tid, routine) {
                    Ok(f) => f,
                    Err(k) => return Exec::Fail(k),
                };
                let arg = self.eval(tid, *arg);
                let child = self.threads.len() as u32;
                let core = child % self.config.num_cores.max(1);
                let nvars = self.program.function(target).num_vars();
                self.threads
                    .push(Thread::new(child, core, target, nvars, &[arg]));
                if let Some(d) = dst {
                    self.set_var(tid, *d, child as Value);
                }
                let parent_core = self.threads[tid as usize].core;
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Spawn {
                        seq,
                        tid,
                        core: parent_core,
                        child,
                    },
                );
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Enter {
                        seq,
                        tid: child,
                        core,
                        func: target,
                    },
                );
                Exec::Continue
            }
            Op::ThreadJoin { tid: target } => {
                let target = self.eval(tid, *target);
                if target < 0 || target as usize >= self.threads.len() {
                    // Joining an invalid tid: treat as a no-op, like joining
                    // an already-detached pthread id.
                    return Exec::Continue;
                }
                let target = target as u32;
                if self.threads[target as usize].state == ThreadState::Finished {
                    Exec::Continue
                } else {
                    Exec::Block(BlockReason::Join(target))
                }
            }
            Op::MutexLock { addr } => {
                let a = self.eval(tid, *addr) as u64;
                // Validate the mutex cell is accessible (NULL / freed mutex
                // is the pbzip2 #1 crash).
                if let Err(k) = self.mem.load(a) {
                    return Exec::Fail(k);
                }
                match self.mutex_owners.get(&a) {
                    Some(&owner) if owner != tid => Exec::Block(BlockReason::Mutex(a)),
                    Some(_) => {
                        // Recursive lock: deadlock with self. Model as block
                        // (will be reported as deadlock if nothing wakes it).
                        Exec::Block(BlockReason::Mutex(a))
                    }
                    None => {
                        self.mutex_owners.insert(a, tid);
                        self.threads[tid as usize].held_mutexes.push(a);
                        if let Err(k) = self.mem.store(a, 1) {
                            return Exec::Fail(k);
                        }
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, 1);
                        Exec::Continue
                    }
                }
            }
            Op::MutexUnlock { addr } => {
                let a = self.eval(tid, *addr) as u64;
                if let Err(k) = self.mem.load(a) {
                    return Exec::Fail(k);
                }
                match self.mutex_owners.get(&a) {
                    Some(&owner) if owner == tid => {
                        self.mutex_owners.remove(&a);
                        self.threads[tid as usize].held_mutexes.retain(|&m| m != a);
                        if let Err(k) = self.mem.store(a, 0) {
                            return Exec::Fail(k);
                        }
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, 0);
                        self.wake_mutex_waiters(a);
                        Exec::Continue
                    }
                    _ => Exec::Fail(FailureKind::UnlockNotHeld { addr: a }),
                }
            }
            Op::Assert { cond, msg } => {
                if self.eval(tid, *cond) == 0 {
                    Exec::Fail(FailureKind::AssertFail { msg: msg.clone() })
                } else {
                    Exec::Continue
                }
            }
            Op::Print { args } => {
                let vals: Vec<Value> = args.iter().map(|&a| self.eval(tid, a)).collect();
                self.output.extend(vals);
                Exec::Continue
            }
            Op::Intrinsic { dst, kind, args } => {
                self.exec_intrinsic(tid, iid, *dst, *kind, args, observers)
            }
            Op::ReadInput { dst, index } => {
                let v = self.input_values.get(*index).copied().unwrap_or(0);
                self.set_var(tid, *dst, v);
                Exec::Continue
            }
            Op::Nop => Exec::Continue,
        }
    }

    fn exec_intrinsic(
        &mut self,
        tid: u32,
        iid: InstrId,
        dst: Option<VarId>,
        kind: gist_ir::IntrinsicKind,
        args: &[Operand],
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        use gist_ir::IntrinsicKind as I;
        match kind {
            I::Strlen => {
                let p = args.first().map(|&a| self.eval(tid, a)).unwrap_or(0) as u64;
                let mut len = 0u64;
                loop {
                    match self.mem.load(p + len) {
                        Ok(0) => break,
                        Ok(v) => {
                            if len == 0 {
                                self.emit_mem(observers, tid, iid, AccessKind::Read, p, v);
                            }
                            len += 1;
                        }
                        Err(k) => return Exec::Fail(k),
                    }
                    if len > 1 << 20 {
                        return Exec::Fail(FailureKind::Hang);
                    }
                }
                if let Some(d) = dst {
                    self.set_var(tid, d, len as Value);
                }
                Exec::Continue
            }
            I::Memset => {
                let p = args.first().map(|&a| self.eval(tid, a)).unwrap_or(0) as u64;
                let v = args.get(1).map(|&a| self.eval(tid, a)).unwrap_or(0);
                let n = args.get(2).map(|&a| self.eval(tid, a)).unwrap_or(0).max(0) as u64;
                for i in 0..n {
                    if let Err(k) = self.mem.store(p + i, v) {
                        return Exec::Fail(k);
                    }
                }
                if n > 0 {
                    self.emit_mem(observers, tid, iid, AccessKind::Write, p, v);
                }
                if let Some(d) = dst {
                    self.set_var(tid, d, p as Value);
                }
                Exec::Continue
            }
            I::Memcpy => {
                let d = args.first().map(|&a| self.eval(tid, a)).unwrap_or(0) as u64;
                let s = args.get(1).map(|&a| self.eval(tid, a)).unwrap_or(0) as u64;
                let n = args.get(2).map(|&a| self.eval(tid, a)).unwrap_or(0).max(0) as u64;
                for i in 0..n {
                    let v = match self.mem.load(s + i) {
                        Ok(v) => v,
                        Err(k) => return Exec::Fail(k),
                    };
                    if let Err(k) = self.mem.store(d + i, v) {
                        return Exec::Fail(k);
                    }
                }
                if n > 0 {
                    self.emit_mem(observers, tid, iid, AccessKind::Write, d, 0);
                }
                if let Some(dv) = dst {
                    self.set_var(tid, dv, d as Value);
                }
                Exec::Continue
            }
        }
    }

    fn resolve_callee(&self, tid: u32, callee: &Callee) -> Result<FuncId, FailureKind> {
        match callee {
            Callee::Direct(f) => Ok(*f),
            Callee::Indirect(op) => {
                let v = self.eval(tid, *op);
                let idx = v - Program::FUNC_ADDR_BASE;
                if v < Program::FUNC_ADDR_BASE || idx as usize >= self.program.functions.len() {
                    return Err(FailureKind::SegFault { addr: v as u64 });
                }
                Ok(FuncId(idx as u32))
            }
        }
    }

    fn do_call(
        &mut self,
        tid: u32,
        iid: InstrId,
        dst: Option<VarId>,
        callee: &Callee,
        args: &[Operand],
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        let target = match self.resolve_callee(tid, callee) {
            Ok(f) => f,
            Err(k) => return Exec::Fail(k),
        };
        let argv: Vec<Value> = args.iter().map(|&a| self.eval(tid, a)).collect();
        // Advance past the call before pushing, so `ret` resumes after it.
        self.threads[tid as usize].top_mut().index += 1;
        let nvars = self.program.function(target).num_vars();
        let mut frame = Frame::new(target, nvars, &argv);
        frame.ret_dst = dst;
        frame.callsite = Some(iid);
        self.threads[tid as usize].frames.push(frame);
        let core = self.threads[tid as usize].core;
        if matches!(callee, Callee::Indirect(_)) {
            self.indirect_transfers += 1;
            let entry_block = self.program.function(target).entry();
            let entry_stmt = {
                let b = self.program.function(target).block(entry_block);
                b.instrs
                    .first()
                    .map(|i| i.id)
                    .unwrap_or_else(|| b.term.id())
            };
            let seq = self.next_seq();
            self.emit(
                observers,
                Event::IndirectTransfer {
                    seq,
                    tid,
                    core,
                    iid,
                    target: entry_stmt,
                },
            );
        }
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Enter {
                seq,
                tid,
                core,
                func: target,
            },
        );
        Exec::Jumped
    }

    fn exec_term(
        &mut self,
        tid: u32,
        term: &Terminator,
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        match term {
            Terminator::Br { target, .. } => {
                let f = self.threads[tid as usize].top_mut();
                f.block = *target;
                f.index = 0;
                Exec::Jumped
            }
            Terminator::CondBr {
                id,
                cond,
                then_bb,
                else_bb,
                ..
            } => {
                let taken = self.eval(tid, *cond) != 0;
                self.branches += 1;
                let core = self.threads[tid as usize].core;
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Branch {
                        seq,
                        tid,
                        core,
                        iid: *id,
                        taken,
                    },
                );
                let f = self.threads[tid as usize].top_mut();
                f.block = if taken { *then_bb } else { *else_bb };
                f.index = 0;
                Exec::Jumped
            }
            Terminator::Ret { id, value, .. } => {
                let rv = value.map(|v| self.eval(tid, v));
                let frame = self.threads[tid as usize]
                    .frames
                    .pop()
                    .expect("ret needs a frame");
                let core = self.threads[tid as usize].core;
                if self.threads[tid as usize].frames.is_empty() {
                    let seq = self.next_seq();
                    self.emit(
                        observers,
                        Event::Return {
                            seq,
                            tid,
                            core,
                            iid: *id,
                            to: None,
                        },
                    );
                    return Exec::Exited;
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, rv) {
                    self.set_var(tid, dst, v);
                }
                let to = Some(self.current_stmt(tid));
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Return {
                        seq,
                        tid,
                        core,
                        iid: *id,
                        to,
                    },
                );
                Exec::Jumped
            }
            Terminator::Unreachable { .. } => Exec::Fail(FailureKind::UnreachableExecuted),
        }
    }

    fn wake_mutex_waiters(&mut self, addr: u64) {
        for t in &mut self.threads {
            if t.state == ThreadState::Blocked(BlockReason::Mutex(addr)) {
                t.state = ThreadState::Runnable;
            }
        }
    }

    fn wake_joiners(&mut self, exited: u32) {
        for t in &mut self.threads {
            if t.state == ThreadState::Blocked(BlockReason::Join(exited)) {
                t.state = ThreadState::Runnable;
            }
        }
    }
}
