//! The interpreter.
//!
//! Execution dispatches over a [`CompiledProgram`] — a flat, dense lowering
//! of the IR produced once per program (see [`crate::compiled`]) — rather
//! than re-walking the `function -> block -> instr` tree on every step.
//! The observable behavior (event stream, failure reports, counters) is
//! identical to the legacy tree-walk engine, which is retained under the
//! `treewalk` feature as a differential-testing oracle.

use std::sync::Arc;

use gist_ir::{BinKind, FuncId, InstrId, Program, Value, VarId};

use crate::compiled::{CCallee, COp, CompiledProgram, Slot};
use crate::event::{AccessKind, Event, Observer};
use crate::failure::{FailureKind, FailureReport, StackFrame};
use crate::mem::{FxHashMap, MemScratch, Memory};
use crate::sched::SchedulerKind;
use crate::thread::{BlockReason, Frame, Thread, ThreadState};

/// One workload input: scalars are read directly by `input n`; strings are
/// materialized on the heap and `input n` yields their base pointer.
#[derive(Clone, Debug, PartialEq)]
pub enum Input {
    /// A scalar value.
    Scalar(Value),
    /// A NUL-terminated string (one character per cell).
    Str(Vec<Value>),
}

impl Input {
    /// Builds a string input from ASCII text.
    pub fn str_from(text: &str) -> Input {
        Input::Str(text.chars().map(|c| c as Value).collect())
    }
}

/// VM configuration: the full description of a production run.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// The scheduler (defaults to round-robin with quantum 1).
    pub scheduler: SchedulerKind,
    /// Workload inputs.
    pub inputs: Vec<Input>,
    /// Step budget before the run is declared a [`FailureKind::Hang`].
    pub max_steps: u64,
    /// Number of virtual cores (threads are pinned `core = tid % cores`).
    pub num_cores: u32,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            scheduler: SchedulerKind::RoundRobin { quantum: 1 },
            inputs: Vec::new(),
            max_steps: 1_000_000,
            num_cores: 4,
        }
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum RunOutcome {
    /// All threads exited normally.
    Finished,
    /// The run failed.
    Failed(FailureReport),
}

impl RunOutcome {
    /// Returns the failure report if the run failed.
    pub fn failure(&self) -> Option<&FailureReport> {
        match self {
            RunOutcome::Failed(r) => Some(r),
            RunOutcome::Finished => None,
        }
    }
}

/// The result of a completed run plus its accounting counters, which the
/// overhead models (gist-baselines) convert into slowdown percentages.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Values printed by the program.
    pub output: Vec<Value>,
    /// Total statements retired.
    pub steps: u64,
    /// Statements retired per virtual core.
    pub retired_per_core: Vec<u64>,
    /// Conditional branches executed.
    pub branches: u64,
    /// Indirect transfers executed.
    pub indirect_transfers: u64,
    /// Memory accesses executed.
    pub mem_accesses: u64,
    /// Number of threads that ever existed.
    pub threads: u32,
    /// Scheduler decisions taken (≥ steps: address-computation steps and
    /// blocked lock/join retries also consume a pick).
    pub sched_picks: u64,
    /// Involuntary context switches: picks where the previously running
    /// thread was still runnable but a different thread got the core.
    pub preemptions: u64,
}

/// Recycled allocations of a finished [`Vm`], for pooled batch execution.
///
/// A fleet worker that tears a VM down to scratch with
/// [`Vm::into_scratch`] and rebuilds the next run's VM with
/// [`Vm::with_scratch`] reuses the shadow-memory map's capacity instead of
/// re-growing it from empty every run. Purely an allocation-reuse
/// mechanism: a scratch-built VM is behaviorally identical to a fresh one.
#[derive(Debug, Default)]
pub struct VmScratch {
    mem: MemScratch,
}

/// The MiniC virtual machine.
pub struct Vm<'p> {
    program: &'p Program,
    /// The flat lowered instruction streams the engine dispatches over;
    /// shared read-only across all VMs running the same program.
    compiled: Arc<CompiledProgram>,
    config: VmConfig,
    mem: Memory,
    threads: Vec<Thread>,
    /// Mutex cell address -> owner tid.
    mutex_owners: FxHashMap<u64, u32>,
    /// Materialized input values (after string interning).
    input_values: Vec<Value>,
    output: Vec<Value>,
    seq: u64,
    steps: u64,
    sched_picks: u64,
    preemptions: u64,
    last_picked: Option<u32>,
    retired_per_core: Vec<u64>,
    branches: u64,
    indirect_transfers: u64,
    mem_accesses: u64,
}

/// Signal raised by one statement's execution.
enum Exec {
    /// Statement completed; advance past it.
    Continue,
    /// Control already transferred (branch, call, ret); don't advance.
    Jumped,
    /// The thread must block and retry this statement when woken.
    Block(BlockReason),
    /// The run fails here.
    Fail(FailureKind),
    /// The thread exited.
    Exited,
}

impl<'p> Vm<'p> {
    /// Creates a VM for one run of `program`, compiling it on first use
    /// (subsequent VMs for the same program share the cached compilation).
    pub fn new(program: &'p Program, config: VmConfig) -> Vm<'p> {
        Vm::with_compiled(program, CompiledProgram::shared(program), config)
    }

    /// Creates a VM executing an already-lowered `program`. The caller is
    /// responsible for `compiled` being the compilation of `program` —
    /// typically via [`CompiledProgram::shared`], which a fleet calls once
    /// and then clones the `Arc` per worker.
    pub fn with_compiled(
        program: &'p Program,
        compiled: Arc<CompiledProgram>,
        config: VmConfig,
    ) -> Vm<'p> {
        Vm::with_scratch(program, compiled, config, VmScratch::default())
    }

    /// Like [`Vm::with_compiled`], but recycling a previous run's
    /// allocations.
    pub fn with_scratch(
        program: &'p Program,
        compiled: Arc<CompiledProgram>,
        config: VmConfig,
        scratch: VmScratch,
    ) -> Vm<'p> {
        debug_assert!(
            compiled.matches(program),
            "compiled program does not correspond to the IR it runs"
        );
        let mut mem = Memory::with_scratch(program, scratch.mem);
        debug_assert_eq!(
            mem.global_bases(),
            &compiled.global_bases[..],
            "compile-time global layout must mirror Memory::new"
        );
        let input_values = config
            .inputs
            .iter()
            .map(|i| match i {
                Input::Scalar(v) => *v,
                Input::Str(chars) => mem.intern_string(chars) as Value,
            })
            .collect();
        let entry = program.entry;
        let nvars = compiled.funcs[entry.index()].num_vars;
        let threads = vec![Thread::new(0, 0, entry, nvars, &[])];
        let cores = config.num_cores.max(1);
        Vm {
            program,
            compiled,
            config,
            mem,
            threads,
            mutex_owners: FxHashMap::default(),
            input_values,
            output: Vec::new(),
            seq: 0,
            steps: 0,
            sched_picks: 0,
            preemptions: 0,
            last_picked: None,
            retired_per_core: vec![0; cores as usize],
            branches: 0,
            indirect_transfers: 0,
            mem_accesses: 0,
        }
    }

    /// Tears the VM down to its reusable allocations.
    pub fn into_scratch(self) -> VmScratch {
        VmScratch {
            mem: self.mem.into_scratch(),
        }
    }

    /// Read-only view of memory (for tests and diagnostics).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn emit(&mut self, observers: &mut [&mut dyn Observer], ev: Event) {
        for o in observers.iter_mut() {
            o.on_event(&ev);
        }
    }

    /// Runs the program to completion or failure using the configured
    /// scheduler.
    pub fn run(&mut self, observers: &mut [&mut dyn Observer]) -> RunResult {
        let mut scheduler = self.config.scheduler.build();
        self.run_with(scheduler.as_mut(), observers)
    }

    /// Runs the program with an externally supplied scheduler (used by the
    /// record/replay baseline, which records every scheduling pick).
    pub fn run_with(
        &mut self,
        scheduler: &mut dyn crate::sched::Scheduler,
        observers: &mut [&mut dyn Observer],
    ) -> RunResult {
        // One Arc clone for the whole run; `comp` and `self` are disjoint
        // borrows, so the dispatch loop reads compiled code while mutating
        // VM state without per-step refcount traffic.
        let comp = Arc::clone(&self.compiled);
        let entry = self.program.entry;
        {
            let seq = self.next_seq();
            self.emit(
                observers,
                Event::Enter {
                    seq,
                    tid: 0,
                    core: 0,
                    func: entry,
                },
            );
        }
        let mut runnable: Vec<u32> = Vec::with_capacity(4);
        loop {
            runnable.clear();
            runnable.extend(
                self.threads
                    .iter()
                    .filter(|t| t.is_runnable())
                    .map(|t| t.tid),
            );
            if runnable.is_empty() {
                let blocked = self
                    .threads
                    .iter()
                    .find(|t| matches!(t.state, ThreadState::Blocked(_)));
                let Some(blocked) = blocked else {
                    // Everything finished.
                    return self.result(RunOutcome::Finished);
                };
                // Deadlock at the first blocked thread's current statement.
                let t = blocked.tid;
                let iid = self.current_stmt(t);
                let report = self.report(t, iid, FailureKind::Deadlock);
                let (core, seq) = (self.threads[t as usize].core, self.next_seq());
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid: t,
                        core,
                        iid,
                    },
                );
                return self.result(RunOutcome::Failed(report));
            }
            if self.steps >= self.config.max_steps {
                let t = runnable[0];
                let iid = self.current_stmt(t);
                let report = self.report(t, iid, FailureKind::Hang);
                let (core, seq) = (self.threads[t as usize].core, self.next_seq());
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid: t,
                        core,
                        iid,
                    },
                );
                return self.result(RunOutcome::Failed(report));
            }
            let tid = scheduler.pick(&runnable, self.steps);
            debug_assert!(runnable.contains(&tid));
            self.sched_picks += 1;
            if let Some(prev) = self.last_picked {
                if prev != tid && runnable.contains(&prev) {
                    self.preemptions += 1;
                }
            }
            self.last_picked = Some(tid);
            if let Some(outcome) = self.step_thread(&comp, tid, observers) {
                return self.result(outcome);
            }
        }
    }

    fn result(&self, outcome: RunOutcome) -> RunResult {
        // Metrics are flushed in bulk here, once per run, so the per-step
        // hot path carries no atomic traffic.
        gist_obs::counter!("vm.runs").inc();
        gist_obs::counter!("vm.instr_retired").add(self.steps);
        gist_obs::counter!("vm.sched_picks").add(self.sched_picks);
        gist_obs::counter!("vm.preemptions").add(self.preemptions);
        gist_obs::counter!("vm.branches").add(self.branches);
        gist_obs::counter!("vm.mem_accesses").add(self.mem_accesses);
        gist_obs::counter!("vm.threads_spawned").add(self.threads.len() as u64);
        match &outcome {
            RunOutcome::Failed(report) => {
                gist_obs::counter_by_name(report.kind.metric_name()).inc()
            }
            RunOutcome::Finished => gist_obs::counter!("vm.runs_finished").inc(),
        }
        RunResult {
            outcome,
            output: self.output.clone(),
            steps: self.steps,
            retired_per_core: self.retired_per_core.clone(),
            branches: self.branches,
            indirect_transfers: self.indirect_transfers,
            mem_accesses: self.mem_accesses,
            threads: self.threads.len() as u32,
            sched_picks: self.sched_picks,
            preemptions: self.preemptions,
        }
    }

    /// The statement the thread will execute next.
    fn current_stmt(&self, tid: u32) -> InstrId {
        let frame = self.threads[tid as usize].top();
        self.compiled.funcs[frame.func.index()].code[frame.pc].iid
    }

    fn report(&self, tid: u32, iid: InstrId, kind: FailureKind) -> FailureReport {
        let t = &self.threads[tid as usize];
        let mut stack = Vec::new();
        // Innermost first: current statement, then callsites outward.
        for (i, f) in t.frames.iter().enumerate().rev() {
            let frame_iid = if i == t.frames.len() - 1 {
                iid
            } else {
                t.frames[i + 1].callsite.unwrap_or(iid)
            };
            stack.push(StackFrame {
                func: f.func,
                iid: frame_iid,
            });
        }
        FailureReport {
            program: self.program.name.clone(),
            kind,
            failing_stmt: iid,
            tid,
            stack,
            loc: self.program.stmt_loc(iid),
        }
    }

    /// Executes one statement of thread `tid`. Returns `Some(outcome)` if
    /// the run ended.
    fn step_thread(
        &mut self,
        comp: &CompiledProgram,
        tid: u32,
        observers: &mut [&mut dyn Observer],
    ) -> Option<RunOutcome> {
        let frame = self.threads[tid as usize].top();
        let core = self.threads[tid as usize].core;
        let ci = &comp.funcs[frame.func.index()].code[frame.pc];
        let iid = ci.iid;

        // Two-phase memory accesses: the first scheduling step of an
        // access computes its address and emits PreAccess (the watchpoint
        // arm point); the access itself executes on a later step, so other
        // threads may interleave in between — as on real hardware. The
        // address slot and kind were precomputed at lowering time.
        if !frame.pre_access_done {
            if let Some((addr_slot, kind)) = ci.pre {
                let addr = self.val(tid, addr_slot) as u64;
                self.threads[tid as usize].top_mut().pre_access_done = true;
                if addr != 0 {
                    let seq = self.next_seq();
                    self.emit(
                        observers,
                        Event::PreAccess {
                            seq,
                            tid,
                            core,
                            iid,
                            kind,
                            addr,
                            is_stack: Memory::is_stack_addr(addr),
                        },
                    );
                    return None;
                }
                // NULL address: the access will fault; no arm point.
            }
        }

        let exec = self.exec_op(comp, tid, iid, &ci.op, observers);

        match exec {
            Exec::Block(reason) => {
                // Do not retire the statement; the thread retries it.
                self.threads[tid as usize].state = ThreadState::Blocked(reason);
                return None;
            }
            Exec::Fail(kind) => {
                self.retire(tid, core, iid, observers);
                let report = self.report(tid, iid, kind);
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Failure {
                        seq,
                        tid,
                        core,
                        iid,
                    },
                );
                return Some(RunOutcome::Failed(report));
            }
            Exec::Continue => {
                self.retire(tid, core, iid, observers);
                let f = self.threads[tid as usize].top_mut();
                f.pc += 1;
                f.pre_access_done = false;
            }
            Exec::Jumped => {
                self.retire(tid, core, iid, observers);
                self.threads[tid as usize].top_mut().pre_access_done = false;
            }
            Exec::Exited => {
                self.retire(tid, core, iid, observers);
                self.threads[tid as usize].state = ThreadState::Finished;
                let seq = self.next_seq();
                self.emit(observers, Event::ThreadExit { seq, tid, core });
                self.wake_joiners(tid);
            }
        }
        None
    }

    fn retire(&mut self, tid: u32, core: u32, iid: InstrId, observers: &mut [&mut dyn Observer]) {
        self.steps += 1;
        self.retired_per_core[core as usize] += 1;
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Retired {
                seq,
                tid,
                core,
                iid,
            },
        );
    }

    #[inline]
    fn val(&self, tid: u32, slot: Slot) -> Value {
        match slot {
            Slot::Const(v) => v,
            Slot::Var(i) => self.threads[tid as usize].top().vars[i as usize].unwrap_or(0),
        }
    }

    #[inline]
    fn set_slot(&mut self, tid: u32, slot: u32, value: Value) {
        self.threads[tid as usize].top_mut().vars[slot as usize] = Some(value);
    }

    fn set_var(&mut self, tid: u32, var: VarId, value: Value) {
        self.threads[tid as usize].top_mut().vars[var.index()] = Some(value);
    }

    fn emit_mem(
        &mut self,
        observers: &mut [&mut dyn Observer],
        tid: u32,
        iid: InstrId,
        kind: AccessKind,
        addr: u64,
        value: Value,
    ) {
        self.mem_accesses += 1;
        let core = self.threads[tid as usize].core;
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Mem {
                seq,
                tid,
                core,
                iid,
                kind,
                addr,
                value,
                is_stack: Memory::is_stack_addr(addr),
            },
        );
    }

    fn exec_op(
        &mut self,
        comp: &CompiledProgram,
        tid: u32,
        iid: InstrId,
        op: &COp,
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        match op {
            COp::Const { dst, value } => {
                self.set_slot(tid, *dst, *value);
                Exec::Continue
            }
            COp::Bin { dst, kind, a, b } => {
                let (a, b) = (self.val(tid, *a), self.val(tid, *b));
                let r = match kind {
                    BinKind::Add => a.wrapping_add(b),
                    BinKind::Sub => a.wrapping_sub(b),
                    BinKind::Mul => a.wrapping_mul(b),
                    BinKind::Div => {
                        if b == 0 {
                            return Exec::Fail(FailureKind::DivByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinKind::Rem => {
                        if b == 0 {
                            return Exec::Fail(FailureKind::DivByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    BinKind::And => a & b,
                    BinKind::Or => a | b,
                    BinKind::Xor => a ^ b,
                    BinKind::Shl => a.wrapping_shl(b as u32 & 63),
                    BinKind::Shr => a.wrapping_shr(b as u32 & 63),
                };
                self.set_slot(tid, *dst, r);
                Exec::Continue
            }
            COp::Cmp { dst, kind, a, b } => {
                let r = kind.eval(self.val(tid, *a), self.val(tid, *b));
                self.set_slot(tid, *dst, r);
                Exec::Continue
            }
            COp::Load { dst, addr } => {
                let a = self.val(tid, *addr) as u64;
                match self.mem.load(a) {
                    Ok(v) => {
                        self.emit_mem(observers, tid, iid, AccessKind::Read, a, v);
                        self.set_slot(tid, *dst, v);
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            COp::Store { addr, value } => {
                let a = self.val(tid, *addr) as u64;
                let v = self.val(tid, *value);
                match self.mem.store(a, v) {
                    Ok(()) => {
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, v);
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            COp::Gep { dst, base, offset } => {
                let r = self.val(tid, *base).wrapping_add(self.val(tid, *offset));
                self.set_slot(tid, *dst, r);
                Exec::Continue
            }
            COp::Alloc { dst, size } => {
                let n = self.val(tid, *size).max(0) as u64;
                let base = self.mem.heap_alloc(n);
                self.set_slot(tid, *dst, base as Value);
                Exec::Continue
            }
            COp::StackAlloc { dst, size } => {
                let n = self.val(tid, *size).max(0) as u64;
                let base = self.mem.stack_alloc(tid, n);
                self.set_slot(tid, *dst, base as Value);
                Exec::Continue
            }
            COp::Free { addr } => {
                let a = self.val(tid, *addr) as u64;
                match self.mem.heap_free(a) {
                    Ok(()) => {
                        if a != 0 {
                            self.emit_mem(observers, tid, iid, AccessKind::Write, a, 0);
                        }
                        Exec::Continue
                    }
                    Err(k) => Exec::Fail(k),
                }
            }
            COp::Call { dst, callee, args } => {
                self.do_call(comp, tid, iid, *dst, *callee, args, observers)
            }
            COp::FuncAddr { dst, value } => {
                self.set_slot(tid, *dst, *value);
                Exec::Continue
            }
            COp::ThreadCreate { dst, routine, arg } => {
                let target = match self.resolve_callee(comp, tid, *routine) {
                    Ok(f) => f,
                    Err(k) => return Exec::Fail(k),
                };
                let arg = self.val(tid, *arg);
                let child = self.threads.len() as u32;
                let core = child % self.config.num_cores.max(1);
                let nvars = comp.funcs[target].num_vars;
                self.threads.push(Thread::new(
                    child,
                    core,
                    FuncId(target as u32),
                    nvars,
                    &[arg],
                ));
                if let Some(d) = dst {
                    self.set_slot(tid, *d, child as Value);
                }
                let parent_core = self.threads[tid as usize].core;
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Spawn {
                        seq,
                        tid,
                        core: parent_core,
                        child,
                    },
                );
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Enter {
                        seq,
                        tid: child,
                        core,
                        func: FuncId(target as u32),
                    },
                );
                Exec::Continue
            }
            COp::ThreadJoin { tid: target } => {
                let target = self.val(tid, *target);
                if target < 0 || target as usize >= self.threads.len() {
                    // Joining an invalid tid: treat as a no-op, like joining
                    // an already-detached pthread id.
                    return Exec::Continue;
                }
                let target = target as u32;
                if self.threads[target as usize].state == ThreadState::Finished {
                    Exec::Continue
                } else {
                    Exec::Block(BlockReason::Join(target))
                }
            }
            COp::MutexLock { addr } => {
                let a = self.val(tid, *addr) as u64;
                // Validate the mutex cell is accessible (NULL / freed mutex
                // is the pbzip2 #1 crash).
                if let Err(k) = self.mem.load(a) {
                    return Exec::Fail(k);
                }
                match self.mutex_owners.get(&a) {
                    Some(&owner) if owner != tid => Exec::Block(BlockReason::Mutex(a)),
                    Some(_) => {
                        // Recursive lock: deadlock with self. Model as block
                        // (will be reported as deadlock if nothing wakes it).
                        Exec::Block(BlockReason::Mutex(a))
                    }
                    None => {
                        self.mutex_owners.insert(a, tid);
                        self.threads[tid as usize].held_mutexes.push(a);
                        if let Err(k) = self.mem.store(a, 1) {
                            return Exec::Fail(k);
                        }
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, 1);
                        Exec::Continue
                    }
                }
            }
            COp::MutexUnlock { addr } => {
                let a = self.val(tid, *addr) as u64;
                if let Err(k) = self.mem.load(a) {
                    return Exec::Fail(k);
                }
                match self.mutex_owners.get(&a) {
                    Some(&owner) if owner == tid => {
                        self.mutex_owners.remove(&a);
                        self.threads[tid as usize].held_mutexes.retain(|&m| m != a);
                        if let Err(k) = self.mem.store(a, 0) {
                            return Exec::Fail(k);
                        }
                        self.emit_mem(observers, tid, iid, AccessKind::Write, a, 0);
                        self.wake_mutex_waiters(a);
                        Exec::Continue
                    }
                    _ => Exec::Fail(FailureKind::UnlockNotHeld { addr: a }),
                }
            }
            COp::Assert { cond, msg } => {
                if self.val(tid, *cond) == 0 {
                    Exec::Fail(FailureKind::AssertFail {
                        msg: msg.as_ref().to_string(),
                    })
                } else {
                    Exec::Continue
                }
            }
            COp::Print { args } => {
                for &a in args.iter() {
                    let v = self.val(tid, a);
                    self.output.push(v);
                }
                Exec::Continue
            }
            COp::Intrinsic { dst, kind, args } => {
                self.exec_intrinsic(tid, iid, *dst, *kind, args, observers)
            }
            COp::ReadInput { dst, index } => {
                let v = self.input_values.get(*index).copied().unwrap_or(0);
                self.set_slot(tid, *dst, v);
                Exec::Continue
            }
            COp::Nop => Exec::Continue,
            COp::Jump { to } => {
                self.threads[tid as usize].top_mut().pc = *to as usize;
                Exec::Jumped
            }
            COp::CondBr {
                cond,
                then_to,
                else_to,
            } => {
                let taken = self.val(tid, *cond) != 0;
                self.branches += 1;
                let core = self.threads[tid as usize].core;
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Branch {
                        seq,
                        tid,
                        core,
                        iid,
                        taken,
                    },
                );
                let f = self.threads[tid as usize].top_mut();
                f.pc = if taken { *then_to } else { *else_to } as usize;
                Exec::Jumped
            }
            COp::Ret { value } => {
                let rv = value.map(|v| self.val(tid, v));
                let frame = self.threads[tid as usize]
                    .frames
                    .pop()
                    .expect("ret needs a frame");
                let core = self.threads[tid as usize].core;
                if self.threads[tid as usize].frames.is_empty() {
                    let seq = self.next_seq();
                    self.emit(
                        observers,
                        Event::Return {
                            seq,
                            tid,
                            core,
                            iid,
                            to: None,
                        },
                    );
                    return Exec::Exited;
                }
                if let (Some(dst), Some(v)) = (frame.ret_dst, rv) {
                    self.set_var(tid, dst, v);
                }
                let to = Some(self.current_stmt(tid));
                let seq = self.next_seq();
                self.emit(
                    observers,
                    Event::Return {
                        seq,
                        tid,
                        core,
                        iid,
                        to,
                    },
                );
                Exec::Jumped
            }
            COp::Unreachable => Exec::Fail(FailureKind::UnreachableExecuted),
        }
    }

    fn exec_intrinsic(
        &mut self,
        tid: u32,
        iid: InstrId,
        dst: Option<u32>,
        kind: gist_ir::IntrinsicKind,
        args: &[Slot],
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        use gist_ir::IntrinsicKind as I;
        match kind {
            I::Strlen => {
                let p = args.first().map(|&a| self.val(tid, a)).unwrap_or(0) as u64;
                let mut len = 0u64;
                loop {
                    match self.mem.load(p + len) {
                        Ok(0) => break,
                        Ok(v) => {
                            if len == 0 {
                                self.emit_mem(observers, tid, iid, AccessKind::Read, p, v);
                            }
                            len += 1;
                        }
                        Err(k) => return Exec::Fail(k),
                    }
                    if len > 1 << 20 {
                        return Exec::Fail(FailureKind::Hang);
                    }
                }
                if let Some(d) = dst {
                    self.set_slot(tid, d, len as Value);
                }
                Exec::Continue
            }
            I::Memset => {
                let p = args.first().map(|&a| self.val(tid, a)).unwrap_or(0) as u64;
                let v = args.get(1).map(|&a| self.val(tid, a)).unwrap_or(0);
                let n = args.get(2).map(|&a| self.val(tid, a)).unwrap_or(0).max(0) as u64;
                for i in 0..n {
                    if let Err(k) = self.mem.store(p + i, v) {
                        return Exec::Fail(k);
                    }
                }
                if n > 0 {
                    self.emit_mem(observers, tid, iid, AccessKind::Write, p, v);
                }
                if let Some(d) = dst {
                    self.set_slot(tid, d, p as Value);
                }
                Exec::Continue
            }
            I::Memcpy => {
                let d = args.first().map(|&a| self.val(tid, a)).unwrap_or(0) as u64;
                let s = args.get(1).map(|&a| self.val(tid, a)).unwrap_or(0) as u64;
                let n = args.get(2).map(|&a| self.val(tid, a)).unwrap_or(0).max(0) as u64;
                for i in 0..n {
                    let v = match self.mem.load(s + i) {
                        Ok(v) => v,
                        Err(k) => return Exec::Fail(k),
                    };
                    if let Err(k) = self.mem.store(d + i, v) {
                        return Exec::Fail(k);
                    }
                }
                if n > 0 {
                    self.emit_mem(observers, tid, iid, AccessKind::Write, d, 0);
                }
                if let Some(dv) = dst {
                    self.set_slot(tid, dv, d as Value);
                }
                Exec::Continue
            }
        }
    }

    /// Resolves a call target to a dense function index.
    fn resolve_callee(
        &self,
        comp: &CompiledProgram,
        tid: u32,
        callee: CCallee,
    ) -> Result<usize, FailureKind> {
        match callee {
            CCallee::Direct(f) => Ok(f as usize),
            CCallee::Indirect(slot) => {
                let v = self.val(tid, slot);
                let idx = v - Program::FUNC_ADDR_BASE;
                if v < Program::FUNC_ADDR_BASE || idx as usize >= comp.funcs.len() {
                    return Err(FailureKind::SegFault { addr: v as u64 });
                }
                Ok(idx as usize)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_call(
        &mut self,
        comp: &CompiledProgram,
        tid: u32,
        iid: InstrId,
        dst: Option<u32>,
        callee: CCallee,
        args: &[Slot],
        observers: &mut [&mut dyn Observer],
    ) -> Exec {
        let target = match self.resolve_callee(comp, tid, callee) {
            Ok(f) => f,
            Err(k) => return Exec::Fail(k),
        };
        let argv: Vec<Value> = args.iter().map(|&a| self.val(tid, a)).collect();
        // Advance past the call before pushing, so `ret` resumes after it.
        self.threads[tid as usize].top_mut().pc += 1;
        let nvars = comp.funcs[target].num_vars;
        let mut frame = Frame::new(FuncId(target as u32), nvars, &argv);
        frame.ret_dst = dst.map(VarId);
        frame.callsite = Some(iid);
        self.threads[tid as usize].frames.push(frame);
        let core = self.threads[tid as usize].core;
        if matches!(callee, CCallee::Indirect(_)) {
            self.indirect_transfers += 1;
            let entry_stmt = comp.funcs[target].entry_stmt;
            let seq = self.next_seq();
            self.emit(
                observers,
                Event::IndirectTransfer {
                    seq,
                    tid,
                    core,
                    iid,
                    target: entry_stmt,
                },
            );
        }
        let seq = self.next_seq();
        self.emit(
            observers,
            Event::Enter {
                seq,
                tid,
                core,
                func: FuncId(target as u32),
            },
        );
        Exec::Jumped
    }

    fn wake_mutex_waiters(&mut self, addr: u64) {
        for t in &mut self.threads {
            if t.state == ThreadState::Blocked(BlockReason::Mutex(addr)) {
                t.state = ThreadState::Runnable;
            }
        }
    }

    fn wake_joiners(&mut self, exited: u32) {
        for t in &mut self.threads {
            if t.state == ThreadState::Blocked(BlockReason::Join(exited)) {
                t.state = ThreadState::Runnable;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use gist_ir::parser::parse_program;

    fn run_text(text: &str) -> RunResult {
        let p = parse_program("t", text).unwrap();
        Vm::new(&p, VmConfig::default()).run(&mut [])
    }

    fn run_text_cfg(text: &str, cfg: VmConfig) -> RunResult {
        let p = parse_program("t", text).unwrap();
        Vm::new(&p, cfg).run(&mut [])
    }

    #[test]
    fn arithmetic_and_print() {
        let r =
            run_text("fn main() {\nentry:\n  x = const 6\n  y = mul x, 7\n  print y\n  ret\n}\n");
        assert_eq!(r.outcome, RunOutcome::Finished);
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn loop_counts_down() {
        let r = run_text(
            r#"
global n = 5
fn main() {
entry:
  br head
head:
  v = load $n
  c = cmp gt v, 0
  condbr c, body, exit
body:
  d = sub v, 1
  store $n, d
  br head
exit:
  print v
  ret
}
"#,
        );
        assert_eq!(r.outcome, RunOutcome::Finished);
        assert_eq!(r.output, vec![0]);
        assert_eq!(r.branches, 6, "five taken + one not-taken");
    }

    #[test]
    fn call_and_return_value() {
        let r = run_text(
            r#"
fn add1(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  r = call add1(41)
  print r
  ret
}
"#,
        );
        assert_eq!(r.output, vec![42]);
    }

    #[test]
    fn indirect_call_resolves() {
        let r = run_text(
            r#"
fn double(x) {
entry:
  y = mul x, 2
  ret y
}
fn main() {
entry:
  fp = funcaddr double
  r = icall fp(21)
  print r
  ret
}
"#,
        );
        assert_eq!(r.output, vec![42]);
        assert_eq!(r.indirect_transfers, 1);
    }

    #[test]
    fn null_deref_produces_segfault_report() {
        let r = run_text("fn main() {\nentry:\n  x = load 0\n  ret\n}\n");
        let report = r.outcome.failure().expect("must fail");
        assert!(matches!(report.kind, FailureKind::SegFault { addr: 0 }));
        assert_eq!(report.tid, 0);
        assert_eq!(report.stack.len(), 1);
    }

    #[test]
    fn double_free_detected() {
        let r = run_text("fn main() {\nentry:\n  p = alloc 2\n  free p\n  free p\n  ret\n}\n");
        let report = r.outcome.failure().expect("must fail");
        assert!(matches!(report.kind, FailureKind::DoubleFree { .. }));
    }

    #[test]
    fn assert_failure_carries_message() {
        let r = run_text("fn main() {\nentry:\n  z = const 0\n  assert z, \"boom\"\n  ret\n}\n");
        match &r.outcome.failure().unwrap().kind {
            FailureKind::AssertFail { msg } => assert_eq!(msg, "boom"),
            k => panic!("wrong kind {k:?}"),
        }
    }

    #[test]
    fn div_by_zero_detected() {
        let r = run_text(
            "fn main() {\nentry:\n  a = const 1\n  b = const 0\n  c = div a, b\n  ret\n}\n",
        );
        assert!(matches!(
            r.outcome.failure().unwrap().kind,
            FailureKind::DivByZero
        ));
    }

    #[test]
    fn spawn_join_and_shared_memory() {
        let r = run_text(
            r#"
global x = 0
fn worker(arg) {
entry:
  store $x, arg
  ret
}
fn main() {
entry:
  t = spawn worker(9)
  join t
  v = load $x
  print v
  ret
}
"#,
        );
        assert_eq!(r.outcome, RunOutcome::Finished);
        assert_eq!(r.output, vec![9]);
        assert_eq!(r.threads, 2);
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        // Two threads increment a counter 100 times each under a lock;
        // result must be 200 under any schedule.
        let text = r#"
global m = 0
global count = 0
fn worker(arg) {
entry:
  i = const 0
  br head
head:
  c = cmp lt i, 100
  condbr c, body, exit
body:
  lock $m
  v = load $count
  v2 = add v, 1
  store $count, v2
  unlock $m
  i = add i, 1
  br head
exit:
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(0)
  join t1
  join t2
  v = load $count
  print v
  ret
}
"#;
        for seed in 0..5 {
            let r = run_text_cfg(
                text,
                VmConfig {
                    scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
                    ..VmConfig::default()
                },
            );
            assert_eq!(r.outcome, RunOutcome::Finished, "seed {seed}");
            assert_eq!(r.output, vec![200], "seed {seed}");
        }
    }

    #[test]
    fn racy_increment_loses_updates_on_some_schedule() {
        // Without the lock, some random schedule must lose an update.
        let text = r#"
global count = 0
fn worker(arg) {
entry:
  i = const 0
  br head
head:
  c = cmp lt i, 20
  condbr c, body, exit
body:
  v = load $count
  v2 = add v, 1
  store $count, v2
  i = add i, 1
  br head
exit:
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(0)
  join t1
  join t2
  v = load $count
  print v
  ret
}
"#;
        let mut lost = false;
        for seed in 0..20 {
            let r = run_text_cfg(
                text,
                VmConfig {
                    scheduler: SchedulerKind::Random { seed, preempt: 0.7 },
                    ..VmConfig::default()
                },
            );
            if r.output != vec![40] {
                lost = true;
                break;
            }
        }
        assert!(lost, "expected at least one schedule to lose an update");
    }

    #[test]
    fn deadlock_detected() {
        let text = r#"
global a = 0
global b = 0
fn t2body(arg) {
entry:
  lock $b
  lock $a
  unlock $a
  unlock $b
  ret
}
fn main() {
entry:
  t = spawn t2body(0)
  lock $a
  lock $b
  unlock $b
  unlock $a
  join t
  ret
}
"#;
        // Force the interleaving: main locks a, t2 locks b, then both block.
        let mut deadlocked = false;
        for seed in 0..50 {
            let r = run_text_cfg(
                text,
                VmConfig {
                    scheduler: SchedulerKind::Random { seed, preempt: 0.8 },
                    ..VmConfig::default()
                },
            );
            if let Some(rep) = r.outcome.failure() {
                assert!(matches!(rep.kind, FailureKind::Deadlock));
                deadlocked = true;
                break;
            }
        }
        assert!(deadlocked, "expected some schedule to deadlock");
    }

    #[test]
    fn hang_detected_via_step_budget() {
        let r = run_text_cfg(
            "fn main() {\nentry:\n  br entry\n}\n",
            VmConfig {
                max_steps: 1000,
                ..VmConfig::default()
            },
        );
        assert!(matches!(
            r.outcome.failure().unwrap().kind,
            FailureKind::Hang
        ));
    }

    #[test]
    fn unlock_of_null_mutex_segfaults_like_pbzip2() {
        // The pbzip2 #1 pattern: main frees/NULLs the mutex while the
        // consumer still uses it.
        let text = r#"
fn cons(q) {
entry:
  m = load q
  lock m
  unlock m
  ret
}
fn main() {
entry:
  q = alloc 1
  m = alloc 1
  store q, m
  t = spawn cons(q)
  free m
  store q, 0
  join t
  ret
}
"#;
        let mut segfaulted = false;
        for seed in 0..40 {
            let r = run_text_cfg(
                text,
                VmConfig {
                    scheduler: SchedulerKind::Random { seed, preempt: 0.6 },
                    ..VmConfig::default()
                },
            );
            if let Some(rep) = r.outcome.failure() {
                assert!(
                    matches!(
                        rep.kind,
                        FailureKind::SegFault { .. } | FailureKind::UseAfterFree { .. }
                    ),
                    "unexpected failure {:?}",
                    rep.kind
                );
                segfaulted = true;
            }
        }
        assert!(segfaulted, "some schedule must crash");
    }

    #[test]
    fn string_inputs_are_materialized() {
        let p = parse_program(
            "t",
            r#"
fn main() {
entry:
  s = input 0
  n = strlen s
  print n
  ret
}
"#,
        )
        .unwrap();
        let mut vm = Vm::new(
            &p,
            VmConfig {
                inputs: vec![Input::str_from("{}{")],
                ..VmConfig::default()
            },
        );
        let r = vm.run(&mut []);
        assert_eq!(r.output, vec![3]);
    }

    #[test]
    fn determinism_same_seed_same_event_stream() {
        let text = r#"
global x = 0
fn worker(arg) {
entry:
  v = load $x
  v2 = add v, arg
  store $x, v2
  ret
}
fn main() {
entry:
  t1 = spawn worker(1)
  t2 = spawn worker(2)
  join t1
  join t2
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let events = |seed: u64| {
            let mut log = EventLog::default();
            let cfg = VmConfig {
                scheduler: SchedulerKind::Random { seed, preempt: 0.5 },
                ..VmConfig::default()
            };
            Vm::new(&p, cfg).run(&mut [&mut log]);
            log.events
        };
        assert_eq!(events(42), events(42));
    }

    #[test]
    fn stack_trace_spans_calls() {
        let text = r#"
fn inner(x) {
entry:
  v = load 0
  ret
}
fn outer(x) {
entry:
  r = call inner(x)
  ret
}
fn main() {
entry:
  r = call outer(1)
  ret
}
"#;
        let r = run_text(text);
        let rep = r.outcome.failure().unwrap();
        assert_eq!(rep.stack.len(), 3);
        // Innermost frame is inner's load.
        assert_eq!(rep.stack[0].iid, rep.failing_stmt);
    }

    #[test]
    fn retired_per_core_sums_to_steps() {
        let text = r#"
fn worker(arg) {
entry:
  x = add arg, 1
  ret
}
fn main() {
entry:
  t1 = spawn worker(0)
  t2 = spawn worker(1)
  t3 = spawn worker(2)
  join t1
  join t2
  join t3
  ret
}
"#;
        let r = run_text(text);
        assert_eq!(r.outcome, RunOutcome::Finished);
        let total: u64 = r.retired_per_core.iter().sum();
        assert_eq!(total, r.steps);
        assert!(r.retired_per_core.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn output_reflects_partial_progress_on_failure() {
        let r = run_text("fn main() {\nentry:\n  x = const 1\n  print x\n  y = load 0\n  ret\n}\n");
        assert!(r.outcome.failure().is_some());
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn scratch_reuse_is_behaviorally_identical() {
        let text = r#"
global x = 3
fn main() {
entry:
  p = alloc 4
  store p, 11
  v = load p
  w = load $x
  s = add v, w
  print s
  free p
  ret
}
"#;
        let p = parse_program("t", text).unwrap();
        let compiled = CompiledProgram::shared(&p);
        let mut scratch = VmScratch::default();
        for _ in 0..3 {
            let mut vm = Vm::with_scratch(&p, Arc::clone(&compiled), VmConfig::default(), scratch);
            let mut log = EventLog::default();
            let r = vm.run(&mut [&mut log]);
            assert_eq!(r.outcome, RunOutcome::Finished);
            assert_eq!(r.output, vec![14]);
            scratch = vm.into_scratch();

            let mut fresh_log = EventLog::default();
            let fr = Vm::new(&p, VmConfig::default()).run(&mut [&mut fresh_log]);
            assert_eq!(fr.output, r.output);
            assert_eq!(fresh_log.events, log.events, "scratch must not leak state");
        }
    }
}
