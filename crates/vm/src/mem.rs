//! The VM's flat memory: globals, heap with allocation states, and
//! per-thread stack regions.
//!
//! The address space is laid out so that address classes are decidable from
//! the address alone — the watchpoint planner needs to know "is this a
//! stack address?" (Gist never watches stack variables, §3.2.3 and §6):
//!
//! ```text
//! 0x0000_0000_0000           NULL page (any access faults)
//! 0x0000_0000_1000 ..        globals (one cell per address unit)
//! 0x0000_0010_0000 ..        heap
//! 0x0000_4000_0000 + t*2^20  stack of thread t
//! 0x4000_0000_0000 ..        encoded function addresses (never dereferenced)
//! ```

use gist_ir::{Program, Value};
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::failure::FailureKind;

/// A fast multiply-rotate hasher for the address-keyed shadow maps.
///
/// Cell lookups are the single hottest memory operation of a fleet run;
/// SipHash's per-lookup cost dominates it. Addresses are attacker-free
/// simulation values, so a non-cryptographic mix is safe. Nothing
/// iterates these maps in an order-sensitive way (the only scan,
/// [`Memory::globals_extent`], takes a max), so hash order cannot leak
/// into the deterministic event stream.
#[derive(Clone, Copy, Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;
/// Address-keyed map with the fast hasher.
pub(crate) type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Recycled allocations of a finished run's [`Memory`], handed back to
/// [`Memory::with_scratch`] so batched fleet runs stop re-growing the cell
/// map from empty every run.
#[derive(Debug, Default)]
pub struct MemScratch {
    cells: FxHashMap<u64, Value>,
}

/// Base address of the globals segment.
pub const GLOBALS_BASE: u64 = 0x1000;
/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x10_0000;
/// Base address of thread stacks.
pub const STACK_BASE: u64 = 0x4000_0000;
/// Size of one thread's stack region.
pub const STACK_SIZE: u64 = 1 << 20;

/// State of a heap allocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AllocState {
    Live,
    Freed,
}

#[derive(Clone, Debug)]
struct AllocInfo {
    size: u64,
    state: AllocState,
}

/// The VM's memory.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    cells: FxHashMap<u64, Value>,
    /// Heap allocations by base address.
    allocs: BTreeMap<u64, AllocInfo>,
    next_heap: u64,
    /// Per-thread stack bump pointers.
    stack_tops: FxHashMap<u32, u64>,
    /// Map from global id to base address.
    global_bases: Vec<u64>,
}

impl Memory {
    /// Creates memory with the program's globals materialized.
    pub fn new(program: &Program) -> Memory {
        Memory::with_scratch(program, MemScratch::default())
    }

    /// Creates memory reusing a previous run's allocations.
    ///
    /// Behaviorally identical to [`Memory::new`]; the recycled cell map
    /// keeps its capacity, so a pooled fleet run skips the rehash-growth
    /// of a cold map.
    pub fn with_scratch(program: &Program, mut scratch: MemScratch) -> Memory {
        scratch.cells.clear();
        let mut m = Memory {
            cells: scratch.cells,
            next_heap: HEAP_BASE,
            ..Memory::default()
        };
        let mut addr = GLOBALS_BASE;
        for g in &program.globals {
            m.global_bases.push(addr);
            for (i, v) in g.init.iter().enumerate() {
                m.cells.insert(addr + i as u64, *v);
            }
            // Remaining cells implicitly 0 but must still be mapped.
            for i in g.init.len()..g.size as usize {
                m.cells.insert(addr + i as u64, 0);
            }
            addr += g.size as u64;
        }
        m
    }

    /// Tears the memory down to its reusable allocations.
    pub fn into_scratch(mut self) -> MemScratch {
        self.cells.clear();
        MemScratch { cells: self.cells }
    }

    /// The base address of a global.
    pub fn global_base(&self, g: gist_ir::GlobalId) -> u64 {
        self.global_bases[g.index()]
    }

    /// All global base addresses (compile-time layout verification).
    pub(crate) fn global_bases(&self) -> &[u64] {
        &self.global_bases
    }

    /// End of the globals segment (exclusive).
    fn globals_end(&self) -> u64 {
        self.global_bases
            .last()
            .map(|&b| b + 1)
            .map(|_| {
                // Recompute precisely: last base + its mapped extent.
                // Cells map tracks exact mapping, so use max mapped global addr + 1.
                self.cells
                    .keys()
                    .filter(|&&a| a < HEAP_BASE)
                    .max()
                    .map(|&a| a + 1)
                    .unwrap_or(GLOBALS_BASE)
            })
            .unwrap_or(GLOBALS_BASE)
    }

    /// True if `addr` lies in some thread's stack region.
    pub fn is_stack_addr(addr: u64) -> bool {
        (STACK_BASE..gist_ir::Program::FUNC_ADDR_BASE as u64).contains(&addr)
    }

    /// Allocates `size` heap cells, zero-initialized. Returns the base.
    pub fn heap_alloc(&mut self, size: u64) -> u64 {
        let size = size.max(1);
        let base = self.next_heap;
        self.next_heap += size + 1; // one-cell red zone between allocations
        self.allocs.insert(
            base,
            AllocInfo {
                size,
                state: AllocState::Live,
            },
        );
        for i in 0..size {
            self.cells.insert(base + i, 0);
        }
        base
    }

    /// Frees a heap allocation. Fails with `DoubleFree` / `InvalidFree`.
    pub fn heap_free(&mut self, addr: u64) -> Result<(), FailureKind> {
        if addr == 0 {
            // free(NULL) is a no-op, as in C.
            return Ok(());
        }
        match self.allocs.get_mut(&addr) {
            Some(info) if info.state == AllocState::Live => {
                info.state = AllocState::Freed;
                Ok(())
            }
            Some(_) => Err(FailureKind::DoubleFree { addr }),
            None => Err(FailureKind::InvalidFree { addr }),
        }
    }

    /// Allocates `size` cells on thread `tid`'s stack.
    pub fn stack_alloc(&mut self, tid: u32, size: u64) -> u64 {
        let region = STACK_BASE + tid as u64 * STACK_SIZE;
        let top = self.stack_tops.entry(tid).or_insert(region);
        let base = *top;
        *top += size.max(1);
        for i in 0..size.max(1) {
            self.cells.insert(base + i, 0);
        }
        base
    }

    /// Classifies an address: `Ok(())` if accessible, or the failure that
    /// accessing it raises.
    fn check(&self, addr: u64) -> Result<(), FailureKind> {
        if addr == 0 || addr < GLOBALS_BASE {
            return Err(FailureKind::SegFault { addr });
        }
        if addr >= gist_ir::Program::FUNC_ADDR_BASE as u64 {
            return Err(FailureKind::SegFault { addr });
        }
        if (HEAP_BASE..STACK_BASE).contains(&addr) {
            // Heap: must be inside a live allocation.
            if let Some((&base, info)) = self.allocs.range(..=addr).next_back() {
                if addr < base + info.size {
                    return match info.state {
                        AllocState::Live => Ok(()),
                        AllocState::Freed => Err(FailureKind::UseAfterFree { addr }),
                    };
                }
            }
            return Err(FailureKind::SegFault { addr });
        }
        if addr < HEAP_BASE {
            // Globals: must be mapped.
            if self.cells.contains_key(&addr) {
                return Ok(());
            }
            return Err(FailureKind::SegFault { addr });
        }
        // Stack: must be mapped (below some thread's bump pointer).
        if self.cells.contains_key(&addr) {
            Ok(())
        } else {
            Err(FailureKind::SegFault { addr })
        }
    }

    /// Reads a cell.
    pub fn load(&self, addr: u64) -> Result<Value, FailureKind> {
        self.check(addr)?;
        Ok(self.cells.get(&addr).copied().unwrap_or(0))
    }

    /// Writes a cell.
    pub fn store(&mut self, addr: u64, value: Value) -> Result<(), FailureKind> {
        self.check(addr)?;
        self.cells.insert(addr, value);
        Ok(())
    }

    /// Materializes a NUL-terminated "string" (one char per cell) on the
    /// heap, returning its base address. Used for string workload inputs.
    pub fn intern_string(&mut self, chars: &[Value]) -> u64 {
        let base = self.heap_alloc(chars.len() as u64 + 1);
        for (i, &c) in chars.iter().enumerate() {
            self.cells.insert(base + i as u64, c);
        }
        self.cells.insert(base + chars.len() as u64, 0);
        base
    }

    /// Reads a NUL-terminated string starting at `addr` (for diagnostics).
    pub fn read_string(&self, addr: u64, max: usize) -> Result<Vec<Value>, FailureKind> {
        let mut out = Vec::new();
        for a in addr..addr + max as u64 {
            let v = self.load(a)?;
            if v == 0 {
                break;
            }
            out.push(v);
        }
        Ok(out)
    }

    /// Number of live heap allocations (for leak diagnostics in tests).
    pub fn live_allocs(&self) -> usize {
        self.allocs
            .values()
            .filter(|a| a.state == AllocState::Live)
            .count()
    }

    /// Total mapped cells (diagnostics).
    pub fn mapped_cells(&self) -> usize {
        self.cells.len()
    }

    /// End of globals, used by tests to confirm layout.
    pub fn globals_extent(&self) -> u64 {
        self.globals_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::builder::ProgramBuilder;

    fn prog_with_globals() -> Program {
        let mut pb = ProgramBuilder::new("t");
        pb.global("a", 7);
        pb.global_array("buf", 4, vec![1, 2]);
        let mut f = pb.function("main", &[]);
        f.ret(None);
        f.finish();
        pb.finish().unwrap()
    }

    #[test]
    fn globals_initialized_and_readable() {
        let p = prog_with_globals();
        let m = Memory::new(&p);
        let a = m.global_base(p.globals[0].id);
        let buf = m.global_base(p.globals[1].id);
        assert_eq!(m.load(a).unwrap(), 7);
        assert_eq!(m.load(buf).unwrap(), 1);
        assert_eq!(m.load(buf + 1).unwrap(), 2);
        assert_eq!(m.load(buf + 3).unwrap(), 0, "tail cells are zero");
    }

    #[test]
    fn null_deref_faults() {
        let p = prog_with_globals();
        let m = Memory::new(&p);
        assert_eq!(m.load(0), Err(FailureKind::SegFault { addr: 0 }));
        let mut m2 = m.clone();
        assert_eq!(m2.store(0, 1), Err(FailureKind::SegFault { addr: 0 }));
    }

    #[test]
    fn heap_alloc_free_cycle() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let a = m.heap_alloc(4);
        assert!(a >= HEAP_BASE);
        m.store(a + 3, 99).unwrap();
        assert_eq!(m.load(a + 3).unwrap(), 99);
        m.heap_free(a).unwrap();
        assert_eq!(m.load(a), Err(FailureKind::UseAfterFree { addr: a }));
        assert_eq!(m.heap_free(a), Err(FailureKind::DoubleFree { addr: a }));
    }

    #[test]
    fn free_null_is_noop() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        assert!(m.heap_free(0).is_ok());
    }

    #[test]
    fn invalid_free_detected() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let a = m.heap_alloc(4);
        assert_eq!(
            m.heap_free(a + 1),
            Err(FailureKind::InvalidFree { addr: a + 1 })
        );
    }

    #[test]
    fn out_of_bounds_heap_access_faults() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let a = m.heap_alloc(2);
        // One past the end hits the red zone.
        assert!(matches!(m.load(a + 2), Err(FailureKind::SegFault { .. })));
    }

    #[test]
    fn stack_addresses_are_classified() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let s = m.stack_alloc(3, 8);
        assert!(Memory::is_stack_addr(s));
        assert!(!Memory::is_stack_addr(HEAP_BASE));
        assert!(!Memory::is_stack_addr(GLOBALS_BASE));
        m.store(s, 5).unwrap();
        assert_eq!(m.load(s).unwrap(), 5);
    }

    #[test]
    fn distinct_threads_get_distinct_stacks() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let a = m.stack_alloc(0, 4);
        let b = m.stack_alloc(1, 4);
        assert_ne!(a, b);
        assert!(b - a >= STACK_SIZE || a - b >= STACK_SIZE);
    }

    #[test]
    fn string_interning_roundtrip() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let s = m.intern_string(&[104, 105]); // "hi"
        assert_eq!(m.read_string(s, 16).unwrap(), vec![104, 105]);
        assert_eq!(m.load(s + 2).unwrap(), 0);
    }

    #[test]
    fn function_address_region_faults_on_access() {
        let p = prog_with_globals();
        let m = Memory::new(&p);
        let fa = gist_ir::Program::FUNC_ADDR_BASE as u64;
        assert!(matches!(m.load(fa), Err(FailureKind::SegFault { .. })));
    }

    #[test]
    fn live_alloc_counting() {
        let p = prog_with_globals();
        let mut m = Memory::new(&p);
        let a = m.heap_alloc(1);
        let _b = m.heap_alloc(1);
        assert_eq!(m.live_allocs(), 2);
        m.heap_free(a).unwrap();
        assert_eq!(m.live_allocs(), 1);
    }
}
