//! The VM's event stream and the observer interface.
//!
//! Every architectural event a real CPU would expose to Gist's tracking
//! machinery is modeled as an [`Event`]: retired statements (Intel PT's
//! "retired instruction" accounting), conditional branch outcomes (PT TNT
//! bits), indirect transfers (PT TIP packets), and memory accesses with
//! values (what hardware watchpoints trap on). Events carry:
//!
//! * `seq` — a global sequence number establishing the total order the
//!   paper obtains from atomic watchpoint handling (§4),
//! * `core` — the virtual core, because Intel PT traces are only ordered
//!   *per core* (§6), a property the PT simulator must honor,
//! * `tid` — the executing thread.

use gist_ir::{FuncId, InstrId, Value};

/// Read/write classification of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (includes `free` and mutex state updates).
    Write,
}

/// One architectural event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A statement retired.
    Retired {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The statement.
        iid: InstrId,
    },
    /// A conditional branch resolved (source of PT TNT bits).
    Branch {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The `condbr` statement.
        iid: InstrId,
        /// Whether the true edge was taken.
        taken: bool,
    },
    /// An indirect control transfer: indirect call target resolved, or a
    /// return to a dynamic address (source of PT TIP packets).
    IndirectTransfer {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The call/return statement.
        iid: InstrId,
        /// The target statement (callee entry or return site).
        target: InstrId,
    },
    /// The address-computation step immediately *before* a memory access.
    ///
    /// Real memory accesses are preceded by address computation, and that
    /// is where Gist inserts its watchpoint-arming instrumentation
    /// ("before the access and after the immediate dominator of that
    /// access", §3.2.3). The VM executes accesses in two scheduler steps —
    /// `PreAccess`, then [`Event::Mem`] — so other threads can interleave
    /// between arming and the access, exactly as on real hardware.
    PreAccess {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The access statement about to execute.
        iid: InstrId,
        /// Read or write.
        kind: AccessKind,
        /// The address that will be accessed.
        addr: u64,
        /// True if the address is in a stack region.
        is_stack: bool,
    },
    /// A memory access (source of watchpoint traps).
    Mem {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The accessing statement.
        iid: InstrId,
        /// Read or write.
        kind: AccessKind,
        /// The accessed address.
        addr: u64,
        /// The value read, or the value being written.
        value: Value,
        /// True if the address is in a thread's stack region (Gist does not
        /// watch stack variables, §3.2.3).
        is_stack: bool,
    },
    /// A function was entered (via call, spawn, or program start).
    Enter {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The entered function.
        func: FuncId,
    },
    /// A function returned.
    ///
    /// The Intel PT simulator uses `to` to decide between RET compression
    /// (the matching call was traced, so the decoder can pop its stack) and
    /// an explicit TIP packet.
    Return {
        /// Global sequence number.
        seq: u64,
        /// Executing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The `ret` statement.
        iid: InstrId,
        /// The statement control resumes at, or `None` if the outermost
        /// frame returned (thread exit).
        to: Option<InstrId>,
    },
    /// A thread was created.
    Spawn {
        /// Global sequence number.
        seq: u64,
        /// The creating thread.
        tid: u32,
        /// Virtual core of the creator.
        core: u32,
        /// The created thread.
        child: u32,
    },
    /// A thread finished.
    ThreadExit {
        /// Global sequence number.
        seq: u64,
        /// The exiting thread.
        tid: u32,
        /// Virtual core.
        core: u32,
    },
    /// The run failed; this is always the final event of a failing run.
    Failure {
        /// Global sequence number.
        seq: u64,
        /// The failing thread.
        tid: u32,
        /// Virtual core.
        core: u32,
        /// The statement at which the failure manifested.
        iid: InstrId,
    },
}

impl Event {
    /// The global sequence number of the event.
    pub fn seq(&self) -> u64 {
        match self {
            Event::Retired { seq, .. }
            | Event::Branch { seq, .. }
            | Event::IndirectTransfer { seq, .. }
            | Event::Return { seq, .. }
            | Event::PreAccess { seq, .. }
            | Event::Mem { seq, .. }
            | Event::Enter { seq, .. }
            | Event::Spawn { seq, .. }
            | Event::ThreadExit { seq, .. }
            | Event::Failure { seq, .. } => *seq,
        }
    }

    /// The thread that produced the event.
    pub fn tid(&self) -> u32 {
        match self {
            Event::Retired { tid, .. }
            | Event::Branch { tid, .. }
            | Event::IndirectTransfer { tid, .. }
            | Event::Return { tid, .. }
            | Event::PreAccess { tid, .. }
            | Event::Mem { tid, .. }
            | Event::Enter { tid, .. }
            | Event::Spawn { tid, .. }
            | Event::ThreadExit { tid, .. }
            | Event::Failure { tid, .. } => *tid,
        }
    }

    /// The virtual core that produced the event.
    pub fn core(&self) -> u32 {
        match self {
            Event::Retired { core, .. }
            | Event::Branch { core, .. }
            | Event::IndirectTransfer { core, .. }
            | Event::Return { core, .. }
            | Event::PreAccess { core, .. }
            | Event::Mem { core, .. }
            | Event::Enter { core, .. }
            | Event::Spawn { core, .. }
            | Event::ThreadExit { core, .. }
            | Event::Failure { core, .. } => *core,
        }
    }
}

/// Consumes the VM's event stream.
///
/// Gist's client runtime, the Intel PT simulator, the watchpoint unit, and
/// the record/replay baseline all implement this trait; they are attached
/// to a [`crate::Vm`] run and see every event in global order.
pub trait Observer {
    /// Called for every event, in increasing `seq` order.
    fn on_event(&mut self, ev: &Event);
}

/// A trivial observer that stores all events (used in tests and by the
/// record/replay baseline).
#[derive(Default, Debug)]
pub struct EventLog {
    /// The recorded events.
    pub events: Vec<Event>,
}

impl Observer for EventLog {
    fn on_event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let evs = [
            Event::Retired {
                seq: 1,
                tid: 2,
                core: 3,
                iid: InstrId(4),
            },
            Event::Branch {
                seq: 5,
                tid: 6,
                core: 7,
                iid: InstrId(8),
                taken: true,
            },
            Event::Mem {
                seq: 9,
                tid: 10,
                core: 11,
                iid: InstrId(12),
                kind: AccessKind::Read,
                addr: 13,
                value: 14,
                is_stack: false,
            },
            Event::Failure {
                seq: 15,
                tid: 16,
                core: 17,
                iid: InstrId(18),
            },
        ];
        assert_eq!(evs[0].seq(), 1);
        assert_eq!(evs[1].tid(), 6);
        assert_eq!(evs[2].core(), 11);
        assert_eq!(evs[3].seq(), 15);
    }

    #[test]
    fn event_log_records_in_order() {
        let mut log = EventLog::default();
        for i in 0..5 {
            log.on_event(&Event::Retired {
                seq: i,
                tid: 0,
                core: 0,
                iid: InstrId(0),
            });
        }
        assert_eq!(log.events.len(), 5);
        assert!(log.events.windows(2).all(|w| w[0].seq() < w[1].seq()));
    }
}
