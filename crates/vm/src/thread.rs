//! Threads and call frames.

use gist_ir::{BlockId, FuncId, InstrId, Value, VarId};

/// Why a thread cannot currently run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockReason {
    /// Waiting to acquire the mutex at this address.
    Mutex(u64),
    /// Waiting for this thread to exit.
    Join(u32),
}

/// Scheduling state of a thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Can be scheduled.
    Runnable,
    /// Blocked on a mutex or join.
    Blocked(BlockReason),
    /// Exited.
    Finished,
}

/// One activation record.
///
/// The frame carries *two* program counters: `pc` indexes the function's
/// flat compiled instruction stream (the engine [`crate::Vm`] dispatches
/// over), while `block`/`index` address the IR tree (used by the legacy
/// tree-walk engine kept for differential testing). Each engine maintains
/// only its own counter.
#[derive(Clone, Debug)]
pub struct Frame {
    /// The function.
    pub func: FuncId,
    /// Index of the next instruction in the compiled stream
    /// (see `gist_vm::compiled`).
    pub pc: usize,
    /// Current block.
    pub block: BlockId,
    /// Index of the next statement within the block
    /// (`== instrs.len()` means the terminator is next).
    pub index: usize,
    /// Register file (None = uninitialized; reading one is a VM bug trap).
    pub vars: Vec<Option<Value>>,
    /// Where the return value goes in the caller, if anywhere.
    pub ret_dst: Option<VarId>,
    /// The callsite statement in the caller (for stack traces).
    pub callsite: Option<InstrId>,
    /// True once the address-computation step of the upcoming memory
    /// access has executed (two-phase accesses; see
    /// [`crate::event::Event::PreAccess`]).
    pub pre_access_done: bool,
}

impl Frame {
    /// Creates a frame for `func` with `nvars` registers, binding `args`
    /// to the first registers.
    pub fn new(func: FuncId, nvars: usize, args: &[Value]) -> Frame {
        let mut vars = vec![None; nvars];
        for (i, &a) in args.iter().enumerate() {
            vars[i] = Some(a);
        }
        Frame {
            func,
            pc: 0,
            block: BlockId(0),
            index: 0,
            vars,
            ret_dst: None,
            callsite: None,
            pre_access_done: false,
        }
    }
}

/// A VM thread.
#[derive(Clone, Debug)]
pub struct Thread {
    /// Thread id (0 = main).
    pub tid: u32,
    /// Virtual core the thread is pinned to.
    pub core: u32,
    /// Call stack; last frame is innermost.
    pub frames: Vec<Frame>,
    /// Scheduling state.
    pub state: ThreadState,
    /// Mutex cells currently held by this thread.
    pub held_mutexes: Vec<u64>,
}

impl Thread {
    /// Creates a thread whose outermost frame runs `func(args)`.
    pub fn new(tid: u32, core: u32, func: FuncId, nvars: usize, args: &[Value]) -> Thread {
        Thread {
            tid,
            core,
            frames: vec![Frame::new(func, nvars, args)],
            state: ThreadState::Runnable,
            held_mutexes: Vec::new(),
        }
    }

    /// The innermost frame.
    pub fn top(&self) -> &Frame {
        self.frames.last().expect("live thread has a frame")
    }

    /// The innermost frame, mutably.
    pub fn top_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("live thread has a frame")
    }

    /// True if the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.state == ThreadState::Runnable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_binds_args_to_leading_vars() {
        let f = Frame::new(FuncId(0), 4, &[10, 20]);
        assert_eq!(f.vars[0], Some(10));
        assert_eq!(f.vars[1], Some(20));
        assert_eq!(f.vars[2], None);
    }

    #[test]
    fn thread_starts_runnable_with_one_frame() {
        let t = Thread::new(1, 0, FuncId(2), 3, &[5]);
        assert!(t.is_runnable());
        assert_eq!(t.frames.len(), 1);
        assert_eq!(t.top().func, FuncId(2));
        assert_eq!(t.top().block, BlockId(0));
        assert_eq!(t.top().index, 0);
    }

    #[test]
    fn blocked_thread_is_not_runnable() {
        let mut t = Thread::new(1, 0, FuncId(0), 0, &[]);
        t.state = ThreadState::Blocked(BlockReason::Mutex(0x10));
        assert!(!t.is_runnable());
        t.state = ThreadState::Finished;
        assert!(!t.is_runnable());
    }
}
