//! Failure kinds, reports, and signatures.

use gist_ir::{FuncId, InstrId, Program, SrcLoc};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The kind of a detected failure.
///
/// Gist "can understand common failures, such as crashes, assertion
/// violations, and hangs" (§3.3); these are the crash classes our VM traps.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// Dereference of NULL or an unmapped address.
    SegFault {
        /// The faulting address.
        addr: u64,
    },
    /// Access to freed heap memory.
    UseAfterFree {
        /// The faulting address.
        addr: u64,
    },
    /// `free` of an already-freed allocation.
    DoubleFree {
        /// The allocation base.
        addr: u64,
    },
    /// `free` of an address that is not an allocation base.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
    /// An `assert` whose condition evaluated to zero.
    AssertFail {
        /// The assertion message.
        msg: String,
    },
    /// Division or remainder by zero.
    DivByZero,
    /// All live threads are blocked.
    Deadlock,
    /// The step budget was exhausted (likely livelock/hang).
    Hang,
    /// An `unreachable` terminator was executed.
    UnreachableExecuted,
    /// `unlock` of a mutex the thread does not hold.
    UnlockNotHeld {
        /// The mutex cell address.
        addr: u64,
    },
}

impl FailureKind {
    /// A short stable label (used in sketch headers, e.g. the paper's
    /// "Type: Concurrency bug, segmentation fault").
    pub fn label(&self) -> &'static str {
        match self {
            FailureKind::SegFault { .. } => "segmentation fault",
            FailureKind::UseAfterFree { .. } => "use after free",
            FailureKind::DoubleFree { .. } => "double free",
            FailureKind::InvalidFree { .. } => "invalid free",
            FailureKind::AssertFail { .. } => "assertion failure",
            FailureKind::DivByZero => "division by zero",
            FailureKind::Deadlock => "deadlock",
            FailureKind::Hang => "hang",
            FailureKind::UnreachableExecuted => "unreachable executed",
            FailureKind::UnlockNotHeld { .. } => "unlock of unheld mutex",
        }
    }

    /// The per-kind metrics counter name (`vm.failures.*` namespace).
    pub fn metric_name(&self) -> &'static str {
        match self {
            FailureKind::SegFault { .. } => "vm.failures.segfault",
            FailureKind::UseAfterFree { .. } => "vm.failures.use_after_free",
            FailureKind::DoubleFree { .. } => "vm.failures.double_free",
            FailureKind::InvalidFree { .. } => "vm.failures.invalid_free",
            FailureKind::AssertFail { .. } => "vm.failures.assert_fail",
            FailureKind::DivByZero => "vm.failures.div_by_zero",
            FailureKind::Deadlock => "vm.failures.deadlock",
            FailureKind::Hang => "vm.failures.hang",
            FailureKind::UnreachableExecuted => "vm.failures.unreachable",
            FailureKind::UnlockNotHeld { .. } => "vm.failures.unlock_not_held",
        }
    }
}

/// One frame of a failure stack trace.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StackFrame {
    /// The function.
    pub func: FuncId,
    /// The statement being executed (or the callsite, for outer frames).
    pub iid: InstrId,
}

/// What Gist receives when a failure occurs in production: the analog of
/// the paper's "failure report (e.g., coredump, stack trace)" (§3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailureReport {
    /// Program name.
    pub program: String,
    /// What went wrong.
    pub kind: FailureKind,
    /// The statement where the failure manifested (the slicing criterion).
    pub failing_stmt: InstrId,
    /// The failing thread.
    pub tid: u32,
    /// Stack trace of the failing thread, innermost frame first.
    pub stack: Vec<StackFrame>,
    /// Source location of the failing statement, if known.
    pub loc: Option<SrcLoc>,
}

impl FailureReport {
    /// A stable signature identifying "the same failure" across runs.
    ///
    /// The paper matches failures across production runs by "the program
    /// counters and stack traces of those executions" (§3, footnote 1); we
    /// hash exactly those (plus the failure class, so e.g. a hang and a
    /// segfault at the same statement are distinct failures).
    pub fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.program.hash(&mut h);
        std::mem::discriminant(&self.kind).hash(&mut h);
        self.failing_stmt.hash(&mut h);
        for f in &self.stack {
            f.func.hash(&mut h);
        }
        h.finish()
    }

    /// Human-readable one-line summary.
    pub fn summary(&self, program: &Program) -> String {
        let loc = self
            .loc
            .map(|l| program.source_map.display(l))
            .unwrap_or_else(|| "<unknown>".to_owned());
        let stack: Vec<&str> = self
            .stack
            .iter()
            .map(|f| program.function(f.func).name.as_str())
            .collect();
        format!(
            "{} at {} ({}) in thread {}: [{}]",
            self.kind.label(),
            self.failing_stmt,
            loc,
            self.tid,
            stack.join(" <- ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(stmt: u32, kind: FailureKind) -> FailureReport {
        FailureReport {
            program: "p".into(),
            kind,
            failing_stmt: InstrId(stmt),
            tid: 1,
            stack: vec![StackFrame {
                func: FuncId(0),
                iid: InstrId(stmt),
            }],
            loc: None,
        }
    }

    #[test]
    fn same_failure_same_signature() {
        let a = report(5, FailureKind::SegFault { addr: 0 });
        let b = report(5, FailureKind::SegFault { addr: 0x10 });
        // Same stmt/class/stack: same failure even if the faulting address
        // differs run to run (heap layout noise).
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn different_stmt_different_signature() {
        let a = report(5, FailureKind::SegFault { addr: 0 });
        let b = report(6, FailureKind::SegFault { addr: 0 });
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn different_kind_different_signature() {
        let a = report(5, FailureKind::SegFault { addr: 0 });
        let b = report(5, FailureKind::Deadlock);
        assert_ne!(a.signature(), b.signature());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            FailureKind::AssertFail { msg: "x".into() }.label(),
            "assertion failure"
        );
        assert_eq!(FailureKind::DoubleFree { addr: 1 }.label(), "double free");
    }
}
