//! Deterministic multithreaded interpreter for MiniC programs.
//!
//! This crate is the "production run" substrate of the failure-sketching
//! reproduction: where the paper's Gist observes real executions of Apache
//! or SQLite on real CPUs, we observe MiniC programs executing on this VM.
//!
//! The VM provides what Gist's runtime needs from an execution environment:
//!
//! * **threads** with a seeded, preemptive [`sched`]uler, so concurrency
//!   bugs manifest on some schedules and not others,
//! * **memory** with allocation-state tracking ([`mem`]), so segfaults,
//!   double frees, and use-after-frees are detected exactly where a real
//!   process would trap,
//! * an **event stream** ([`event::Event`]) carrying retired statements,
//!   branch outcomes (consumed by the Intel PT simulator), and memory
//!   accesses with values (consumed by the watchpoint unit), each stamped
//!   with a global sequence number and a virtual core,
//! * **failure reports** ([`failure::FailureReport`]) with stack traces and
//!   failure signatures, matching the paper's "coredump, stack trace" input
//!   to Gist (§3) and its failure-matching footnote (same program counter +
//!   stack trace).
//!
//! # Examples
//!
//! ```
//! use gist_ir::parser::parse_program;
//! use gist_vm::{Vm, VmConfig, RunOutcome};
//!
//! let p = parse_program("demo", r#"
//! fn main() {
//! entry:
//!   x = const 40
//!   y = add x, 2
//!   print y
//!   ret
//! }
//! "#).unwrap();
//! let mut vm = Vm::new(&p, VmConfig::default());
//! let out = vm.run(&mut []);
//! assert!(matches!(out.outcome, RunOutcome::Finished));
//! assert_eq!(out.output, vec![42]);
//! ```

pub mod compiled;
pub mod event;
pub mod failure;
pub mod mem;
pub mod sched;
pub mod thread;
#[cfg(feature = "treewalk")]
pub mod treewalk;
pub mod vm;

pub use compiled::CompiledProgram;
pub use event::{AccessKind, Event, Observer};
pub use failure::{FailureKind, FailureReport, StackFrame};
pub use mem::{MemScratch, Memory};
pub use sched::{FixedSchedule, RandomScheduler, RoundRobin, Scheduler, SchedulerKind};
#[cfg(feature = "treewalk")]
pub use treewalk::TreeWalkVm;
pub use vm::{Input, RunOutcome, RunResult, Vm, VmConfig, VmScratch};
