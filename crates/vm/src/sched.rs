//! Thread schedulers.
//!
//! Concurrency failures in the paper's evaluation manifest only under
//! particular interleavings. The VM therefore makes the schedule a
//! first-class, *seeded* input: the same `(program, inputs, schedule seed)`
//! triple always produces the identical execution, which is what lets the
//! cooperative fleet (gist-coop) explore many production schedules while
//! each individual run stays reproducible for tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks which runnable thread executes the next statement.
pub trait Scheduler {
    /// Chooses one entry of `runnable` (non-empty, sorted by tid).
    /// `step` is the global step count, for quantum-based policies.
    fn pick(&mut self, runnable: &[u32], step: u64) -> u32;
}

/// Round-robin with a fixed quantum of statements.
#[derive(Clone, Debug)]
pub struct RoundRobin {
    quantum: u64,
    current: Option<u32>,
    used: u64,
}

impl RoundRobin {
    /// Creates a round-robin scheduler with the given quantum (statements
    /// per turn).
    pub fn new(quantum: u64) -> Self {
        RoundRobin {
            quantum: quantum.max(1),
            current: None,
            used: 0,
        }
    }
}

impl Scheduler for RoundRobin {
    fn pick(&mut self, runnable: &[u32], _step: u64) -> u32 {
        if let Some(cur) = self.current {
            if self.used < self.quantum && runnable.contains(&cur) {
                self.used += 1;
                return cur;
            }
            // Rotate to the next runnable tid after `cur`.
            let next = runnable
                .iter()
                .copied()
                .find(|&t| t > cur)
                .unwrap_or(runnable[0]);
            self.current = Some(next);
            self.used = 1;
            return next;
        }
        self.current = Some(runnable[0]);
        self.used = 1;
        runnable[0]
    }
}

/// Uniformly random scheduling with a seed — the "production noise" model.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
    /// Probability of preempting the current thread at each step; with
    /// probability `1 - preempt`, the previous thread continues.
    preempt: f64,
    last: Option<u32>,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed with the default preemption
    /// probability (0.2).
    pub fn new(seed: u64) -> Self {
        Self::with_preempt(seed, 0.2)
    }

    /// Creates a random scheduler with an explicit preemption probability.
    pub fn with_preempt(seed: u64, preempt: f64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
            preempt: preempt.clamp(0.0, 1.0),
            last: None,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, runnable: &[u32], _step: u64) -> u32 {
        if let Some(last) = self.last {
            if runnable.contains(&last) && self.rng.gen::<f64>() >= self.preempt {
                return last;
            }
        }
        let choice = runnable[self.rng.gen_range(0..runnable.len())];
        self.last = Some(choice);
        choice
    }
}

/// Replays an explicit schedule: a list of tids, consumed one per step.
/// When the list is exhausted (or the scheduled tid is not runnable),
/// falls back to the lowest runnable tid. Used by tests to force the
/// exact interleavings of the paper's figures.
#[derive(Clone, Debug)]
pub struct FixedSchedule {
    script: Vec<u32>,
    pos: usize,
}

impl FixedSchedule {
    /// Creates a fixed schedule from a script of tids.
    pub fn new(script: Vec<u32>) -> Self {
        FixedSchedule { script, pos: 0 }
    }
}

impl Scheduler for FixedSchedule {
    fn pick(&mut self, runnable: &[u32], _step: u64) -> u32 {
        while self.pos < self.script.len() {
            let want = self.script[self.pos];
            self.pos += 1;
            if runnable.contains(&want) {
                return want;
            }
        }
        runnable[0]
    }
}

/// A serializable description of a scheduler, so run configurations can be
/// shipped between Gist's server and clients.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerKind {
    /// [`RoundRobin`] with the given quantum.
    RoundRobin {
        /// Statements per turn.
        quantum: u64,
    },
    /// [`RandomScheduler`] with seed and preemption probability.
    Random {
        /// RNG seed.
        seed: u64,
        /// Preemption probability per step.
        preempt: f64,
    },
    /// [`FixedSchedule`] with an explicit script.
    Fixed {
        /// The tid script.
        script: Vec<u32>,
    },
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin { quantum } => Box::new(RoundRobin::new(*quantum)),
            SchedulerKind::Random { seed, preempt } => {
                Box::new(RandomScheduler::with_preempt(*seed, *preempt))
            }
            SchedulerKind::Fixed { script } => Box::new(FixedSchedule::new(script.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_after_quantum() {
        let mut rr = RoundRobin::new(2);
        let runnable = vec![0, 1, 2];
        let picks: Vec<u32> = (0..8).map(|s| rr.pick(&runnable, s)).collect();
        assert_eq!(picks, vec![0, 0, 1, 1, 2, 2, 0, 0]);
    }

    #[test]
    fn round_robin_skips_non_runnable() {
        let mut rr = RoundRobin::new(1);
        assert_eq!(rr.pick(&[0, 1], 0), 0);
        // Thread 1 no longer runnable: wraps back to 0.
        assert_eq!(rr.pick(&[0], 1), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let runnable = vec![0, 1, 2, 3];
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..64).map(|i| s.pick(&runnable, i)).collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different seeds should differ");
    }

    #[test]
    fn random_respects_runnable_set() {
        let mut s = RandomScheduler::new(3);
        for i in 0..100 {
            let pick = s.pick(&[2, 5], i);
            assert!(pick == 2 || pick == 5);
        }
    }

    #[test]
    fn fixed_schedule_replays_script() {
        let mut s = FixedSchedule::new(vec![1, 1, 0, 1]);
        let runnable = vec![0, 1];
        assert_eq!(s.pick(&runnable, 0), 1);
        assert_eq!(s.pick(&runnable, 1), 1);
        assert_eq!(s.pick(&runnable, 2), 0);
        assert_eq!(s.pick(&runnable, 3), 1);
        // Script exhausted: lowest runnable.
        assert_eq!(s.pick(&runnable, 4), 0);
    }

    #[test]
    fn fixed_schedule_skips_blocked_entries() {
        let mut s = FixedSchedule::new(vec![3, 1]);
        // 3 is not runnable; falls through to 1.
        assert_eq!(s.pick(&[0, 1], 0), 1);
    }

    #[test]
    fn scheduler_kind_builds_equivalent_scheduler() {
        let kind = SchedulerKind::Random {
            seed: 11,
            preempt: 0.5,
        };
        let mut a = kind.build();
        let mut b = RandomScheduler::with_preempt(11, 0.5);
        let runnable = vec![0, 1, 2];
        for i in 0..32 {
            assert_eq!(a.pick(&runnable, i), b.pick(&runnable, i));
        }
    }
}
