//! The precompiled execution engine: one-time lowering of MiniC IR into a
//! flat, dense instruction stream.
//!
//! The tree-walking interpreter re-resolved `function -> block -> instr`
//! through three indexed lookups and cloned the [`Op`] on every step —
//! acceptable for one run, ruinous for a simulated fleet executing
//! thousands of runs of the *same* program. Lowering moves all of that to
//! compile time, once per program:
//!
//! * every function becomes one contiguous `Vec` of [`CInstr`]; block
//!   boundaries disappear and fallthrough is `pc + 1`,
//! * jump and call targets are resolved to instruction indices
//!   ([`COp::Jump`]/[`COp::CondBr`] carry `pc` values, calls carry dense
//!   function indices),
//! * operands are interned into [`Slot`]s: registers become raw slot
//!   numbers and globals are folded to their *constant* addresses (the
//!   globals segment layout is deterministic, mirroring
//!   [`crate::mem::Memory::new`]),
//! * the two-phase memory-access protocol is precomputed: each compiled
//!   instruction carries its address slot and access kind so the
//!   [`crate::Vm`] arm point costs one table read instead of an `Op` match,
//! * per-function frame layout (register count) and the entry statement id
//!   (the PT `IndirectTransfer` target) are precomputed.
//!
//! Compiled slots keep their original [`InstrId`], so the event stream the
//! VM emits is bit-identical to the tree-walk interpreter's — verified by
//! the compiled-vs-treewalk differential test over the full bugbase.
//!
//! [`CompiledProgram::shared`] memoizes compilation in a process-global
//! cache keyed by [`Program::fingerprint`], so a fleet's worker threads all
//! execute one read-only compilation through an [`Arc`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use gist_ir::{
    BinKind, Callee, CmpKind, InstrId, IntrinsicKind, Op, Operand, Program, Terminator, Value,
};

use crate::event::AccessKind;
use crate::mem::GLOBALS_BASE;

/// An interned operand: either a constant (immediates and resolved global
/// addresses) or a register slot in the current frame.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Slot {
    /// An immediate value (includes folded global addresses).
    Const(Value),
    /// Frame register number.
    Var(u32),
}

/// A resolved call target.
#[derive(Clone, Copy, Debug)]
pub(crate) enum CCallee {
    /// Dense function index.
    Direct(u32),
    /// Function address computed at runtime from this slot.
    Indirect(Slot),
}

/// A lowered operation. Mirrors [`Op`]/[`Terminator`] with all names
/// resolved; terminators are ordinary entries in the instruction stream.
#[derive(Clone, Debug)]
pub(crate) enum COp {
    Const {
        dst: u32,
        value: Value,
    },
    Bin {
        dst: u32,
        kind: BinKind,
        a: Slot,
        b: Slot,
    },
    Cmp {
        dst: u32,
        kind: CmpKind,
        a: Slot,
        b: Slot,
    },
    Load {
        dst: u32,
        addr: Slot,
    },
    Store {
        addr: Slot,
        value: Slot,
    },
    Gep {
        dst: u32,
        base: Slot,
        offset: Slot,
    },
    Alloc {
        dst: u32,
        size: Slot,
    },
    StackAlloc {
        dst: u32,
        size: Slot,
    },
    Free {
        addr: Slot,
    },
    Call {
        dst: Option<u32>,
        callee: CCallee,
        args: Box<[Slot]>,
    },
    FuncAddr {
        dst: u32,
        value: Value,
    },
    ThreadCreate {
        dst: Option<u32>,
        routine: CCallee,
        arg: Slot,
    },
    ThreadJoin {
        tid: Slot,
    },
    MutexLock {
        addr: Slot,
    },
    MutexUnlock {
        addr: Slot,
    },
    Assert {
        cond: Slot,
        msg: Arc<str>,
    },
    Print {
        args: Box<[Slot]>,
    },
    Intrinsic {
        dst: Option<u32>,
        kind: IntrinsicKind,
        args: Box<[Slot]>,
    },
    ReadInput {
        dst: u32,
        index: usize,
    },
    Nop,
    /// Unconditional jump to an instruction index (lowered `br`).
    Jump {
        to: u32,
    },
    /// Conditional jump (lowered `condbr`); both targets are pc values.
    CondBr {
        cond: Slot,
        then_to: u32,
        else_to: u32,
    },
    /// Lowered `ret`.
    Ret {
        value: Option<Slot>,
    },
    /// Lowered `unreachable`.
    Unreachable,
}

/// One slot of the flat instruction stream.
#[derive(Clone, Debug)]
pub(crate) struct CInstr {
    /// The original statement id (events must carry it unchanged).
    pub(crate) iid: InstrId,
    /// Precomputed two-phase access info: the address slot and access
    /// kind, for ops that touch memory (`load`/`store`/`free`/`lock`/
    /// `unlock`).
    pub(crate) pre: Option<(Slot, AccessKind)>,
    /// The operation.
    pub(crate) op: COp,
}

/// One lowered function.
#[derive(Debug)]
pub(crate) struct CompiledFunction {
    /// Flat instruction stream: blocks in order, each block's instructions
    /// followed by its terminator.
    pub(crate) code: Vec<CInstr>,
    /// Register-file size (frame layout).
    pub(crate) num_vars: usize,
    /// First statement of the entry block — the PT-visible target of an
    /// indirect transfer into this function.
    pub(crate) entry_stmt: InstrId,
}

/// A whole program, lowered. Immutable after construction; share it across
/// worker threads with [`Arc`].
#[derive(Debug)]
pub struct CompiledProgram {
    pub(crate) funcs: Vec<CompiledFunction>,
    /// Base address of each global (must equal the layout
    /// [`crate::mem::Memory::new`] produces).
    pub(crate) global_bases: Vec<u64>,
    name: String,
    stmt_count: usize,
    fingerprint: u64,
}

/// Computes the deterministic globals layout without materializing memory.
/// Must stay in lock-step with [`crate::mem::Memory::new`].
fn global_layout(program: &Program) -> Vec<u64> {
    let mut bases = Vec::with_capacity(program.globals.len());
    let mut addr = GLOBALS_BASE;
    for g in &program.globals {
        bases.push(addr);
        addr += g.size as u64;
    }
    bases
}

impl CompiledProgram {
    /// Lowers a finalized program.
    pub fn compile(program: &Program) -> CompiledProgram {
        let global_bases = global_layout(program);
        let lower_operand = |op: Operand| -> Slot {
            match op {
                Operand::Const(v) => Slot::Const(v),
                Operand::Var(v) => Slot::Var(v.index() as u32),
                Operand::Global(g) => Slot::Const(global_bases[g.index()] as Value),
            }
        };
        let lower_callee = |c: &Callee| -> CCallee {
            match c {
                Callee::Direct(f) => CCallee::Direct(f.index() as u32),
                Callee::Indirect(op) => CCallee::Indirect(lower_operand(*op)),
            }
        };
        let mut funcs = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            // Pass 1: instruction index of each block start.
            let mut block_starts = Vec::with_capacity(f.blocks.len());
            let mut pc = 0u32;
            for b in &f.blocks {
                block_starts.push(pc);
                pc += b.instrs.len() as u32 + 1; // + terminator
            }
            // Pass 2: lower.
            let mut code = Vec::with_capacity(pc as usize);
            for b in &f.blocks {
                for instr in &b.instrs {
                    let pre = instr.op.access_addr().map(|addr_op| {
                        let kind = if instr.op.is_memory_write() {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        };
                        (lower_operand(addr_op), kind)
                    });
                    let op = match &instr.op {
                        Op::Const { dst, value } => COp::Const {
                            dst: dst.index() as u32,
                            value: *value,
                        },
                        Op::Bin { dst, kind, a, b } => COp::Bin {
                            dst: dst.index() as u32,
                            kind: *kind,
                            a: lower_operand(*a),
                            b: lower_operand(*b),
                        },
                        Op::Cmp { dst, kind, a, b } => COp::Cmp {
                            dst: dst.index() as u32,
                            kind: *kind,
                            a: lower_operand(*a),
                            b: lower_operand(*b),
                        },
                        Op::Load { dst, addr } => COp::Load {
                            dst: dst.index() as u32,
                            addr: lower_operand(*addr),
                        },
                        Op::Store { addr, value } => COp::Store {
                            addr: lower_operand(*addr),
                            value: lower_operand(*value),
                        },
                        Op::Gep { dst, base, offset } => COp::Gep {
                            dst: dst.index() as u32,
                            base: lower_operand(*base),
                            offset: lower_operand(*offset),
                        },
                        Op::Alloc { dst, size } => COp::Alloc {
                            dst: dst.index() as u32,
                            size: lower_operand(*size),
                        },
                        Op::StackAlloc { dst, size } => COp::StackAlloc {
                            dst: dst.index() as u32,
                            size: lower_operand(*size),
                        },
                        Op::Free { addr } => COp::Free {
                            addr: lower_operand(*addr),
                        },
                        Op::Call { dst, callee, args } => COp::Call {
                            dst: dst.map(|d| d.index() as u32),
                            callee: lower_callee(callee),
                            args: args.iter().map(|&a| lower_operand(a)).collect(),
                        },
                        Op::FuncAddr { dst, func } => COp::FuncAddr {
                            dst: dst.index() as u32,
                            value: Program::FUNC_ADDR_BASE + func.index() as Value,
                        },
                        Op::ThreadCreate { dst, routine, arg } => COp::ThreadCreate {
                            dst: dst.map(|d| d.index() as u32),
                            routine: lower_callee(routine),
                            arg: lower_operand(*arg),
                        },
                        Op::ThreadJoin { tid } => COp::ThreadJoin {
                            tid: lower_operand(*tid),
                        },
                        Op::MutexLock { addr } => COp::MutexLock {
                            addr: lower_operand(*addr),
                        },
                        Op::MutexUnlock { addr } => COp::MutexUnlock {
                            addr: lower_operand(*addr),
                        },
                        Op::Assert { cond, msg } => COp::Assert {
                            cond: lower_operand(*cond),
                            msg: msg.as_str().into(),
                        },
                        Op::Print { args } => COp::Print {
                            args: args.iter().map(|&a| lower_operand(a)).collect(),
                        },
                        Op::Intrinsic { dst, kind, args } => COp::Intrinsic {
                            dst: dst.map(|d| d.index() as u32),
                            kind: *kind,
                            args: args.iter().map(|&a| lower_operand(a)).collect(),
                        },
                        Op::ReadInput { dst, index } => COp::ReadInput {
                            dst: dst.index() as u32,
                            index: *index,
                        },
                        Op::Nop => COp::Nop,
                    };
                    code.push(CInstr {
                        iid: instr.id,
                        pre,
                        op,
                    });
                }
                let op = match &b.term {
                    Terminator::Br { target, .. } => COp::Jump {
                        to: block_starts[target.index()],
                    },
                    Terminator::CondBr {
                        cond,
                        then_bb,
                        else_bb,
                        ..
                    } => COp::CondBr {
                        cond: lower_operand(*cond),
                        then_to: block_starts[then_bb.index()],
                        else_to: block_starts[else_bb.index()],
                    },
                    Terminator::Ret { value, .. } => COp::Ret {
                        value: value.map(lower_operand),
                    },
                    Terminator::Unreachable { .. } => COp::Unreachable,
                };
                code.push(CInstr {
                    iid: b.term.id(),
                    pre: None,
                    op,
                });
            }
            let entry_stmt = {
                let eb = f.block(f.entry());
                eb.instrs
                    .first()
                    .map(|i| i.id)
                    .unwrap_or_else(|| eb.term.id())
            };
            funcs.push(CompiledFunction {
                code,
                num_vars: f.num_vars(),
                entry_stmt,
            });
        }
        CompiledProgram {
            funcs,
            global_bases,
            name: program.name.clone(),
            stmt_count: program.stmt_count(),
            fingerprint: program.fingerprint(),
        }
    }

    /// Returns the shared compilation of `program` from the process-global
    /// compile cache, compiling on first use.
    ///
    /// The cache is keyed by [`Program::fingerprint`]; a hit is
    /// double-checked against the program's name, statement count, and
    /// function count, so a (vanishingly unlikely) fingerprint collision
    /// degrades to an uncached compile rather than executing wrong code.
    /// The cache deliberately records no metrics: hit patterns depend on
    /// process history, which would break the gist-obs determinism
    /// contract.
    pub fn shared(program: &Program) -> Arc<CompiledProgram> {
        static CACHE: OnceLock<Mutex<HashMap<u64, Arc<CompiledProgram>>>> = OnceLock::new();
        let fp = program.fingerprint();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().unwrap();
        if let Some(c) = map.get(&fp) {
            if c.matches(program) {
                return Arc::clone(c);
            }
            // Fingerprint collision: compile fresh, leave the cache alone.
            return Arc::new(Self::compile(program));
        }
        let compiled = Arc::new(Self::compile(program));
        map.insert(fp, Arc::clone(&compiled));
        compiled
    }

    /// True if this compilation structurally corresponds to `program`.
    pub fn matches(&self, program: &Program) -> bool {
        self.name == program.name
            && self.stmt_count == program.stmt_count()
            && self.funcs.len() == program.functions.len()
    }

    /// The fingerprint of the program this was compiled from.
    pub fn source_fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_ir::parser::parse_program;

    fn sample() -> Program {
        parse_program(
            "t",
            r#"
global g = 7
fn add1(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  v = load $g
  c = cmp gt v, 0
  condbr c, body, exit
body:
  r = call add1(v)
  store $g, r
  br exit
exit:
  ret
}
"#,
        )
        .unwrap()
    }

    #[test]
    fn lowering_keeps_statement_ids_in_block_order() {
        let p = sample();
        let c = CompiledProgram::compile(&p);
        for (f, cf) in p.functions.iter().zip(&c.funcs) {
            let want: Vec<InstrId> = f.stmt_ids().collect();
            let got: Vec<InstrId> = cf.code.iter().map(|ci| ci.iid).collect();
            assert_eq!(want, got, "{}", f.name);
            assert_eq!(cf.num_vars, f.num_vars());
        }
    }

    #[test]
    fn globals_fold_to_memory_layout_addresses() {
        let p = sample();
        let c = CompiledProgram::compile(&p);
        let mem = crate::mem::Memory::new(&p);
        for (i, g) in p.globals.iter().enumerate() {
            assert_eq!(c.global_bases[i], mem.global_base(g.id));
        }
        // The `load $g` lowered to a constant-address slot.
        let main = &c.funcs[p.entry.index()];
        match &main.code[0].op {
            COp::Load {
                addr: Slot::Const(a),
                ..
            } => {
                assert_eq!(*a as u64, c.global_bases[0]);
            }
            other => panic!("expected folded load, got {other:?}"),
        }
    }

    #[test]
    fn branch_targets_are_pc_indices() {
        let p = sample();
        let c = CompiledProgram::compile(&p);
        let main = &c.funcs[p.entry.index()];
        let n = main.code.len() as u32;
        for ci in &main.code {
            match ci.op {
                COp::Jump { to } => assert!(to < n),
                COp::CondBr {
                    then_to, else_to, ..
                } => {
                    assert!(then_to < n && else_to < n);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn shared_returns_one_compilation_per_program() {
        let p = sample();
        let a = CompiledProgram::shared(&p);
        let b = CompiledProgram::shared(&p);
        assert!(Arc::ptr_eq(&a, &b), "same fingerprint must share");
        assert!(a.matches(&p));
    }

    #[test]
    fn pre_access_info_matches_op_classification() {
        let p = sample();
        let c = CompiledProgram::compile(&p);
        for (f, cf) in p.functions.iter().zip(&c.funcs) {
            for b in &f.blocks {
                for instr in &b.instrs {
                    let pos = cf.code.iter().position(|ci| ci.iid == instr.id).unwrap();
                    assert_eq!(
                        cf.code[pos].pre.is_some(),
                        instr.op.access_addr().is_some(),
                        "{:?}",
                        instr.op
                    );
                }
            }
        }
    }
}
