//! Sketch accuracy versus a hand-built ideal sketch (§5.2).

use gist_ir::InstrId;
use std::collections::HashSet;

use crate::kendall::kendall_tau_counts;
use crate::sketch::FailureSketch;

/// An ideal failure sketch, hand-computed per the paper's definition
/// (§3.2): only statements with control/data dependencies to the failure,
/// plus the highest-correlation failure-predicting events.
#[derive(Clone, Debug, Default)]
pub struct IdealSketch {
    /// The ideal statement set.
    pub stmts: Vec<InstrId>,
    /// The ideal partial order of memory-access statements (the order a
    /// correct sketch must reproduce), as an ordered list.
    pub access_order: Vec<InstrId>,
    /// Ideal sketch size in source lines (Table 1's source-LOC column).
    pub source_loc: usize,
}

/// Accuracy of a computed sketch against the ideal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accuracy {
    /// Relevance `A_R = 100·|G∩I|/|G∪I|` (percent).
    pub relevance: f64,
    /// Ordering `A_O = 100·(1 − τ/pairs)` (percent).
    pub ordering: f64,
}

impl Accuracy {
    /// Overall accuracy `A = (A_R + A_O)/2` (§5.2: "equally favors A_O and
    /// A_R").
    pub fn overall(&self) -> f64 {
        (self.relevance + self.ordering) / 2.0
    }
}

/// Measures a Gist-computed sketch against the ideal sketch.
///
/// `gist_access_order` is the computed sketch's memory-access statement
/// order (by sketch step); relevance uses the sketch's statement set.
pub fn measure(gist: &FailureSketch, ideal: &IdealSketch) -> Accuracy {
    let g: HashSet<InstrId> = gist.stmts().into_iter().collect();
    let i: HashSet<InstrId> = ideal.stmts.iter().copied().collect();
    let inter = g.intersection(&i).count();
    let union = g.union(&i).count();
    let relevance = if union == 0 {
        100.0
    } else {
        100.0 * inter as f64 / union as f64
    };
    // Ordering over shared access statements.
    let gist_order: Vec<InstrId> = gist
        .steps
        .iter()
        .map(|s| s.stmt)
        .filter(|s| ideal.access_order.contains(s))
        .collect();
    let (d, p) = kendall_tau_counts(&gist_order, &ideal.access_order);
    let ordering = if p == 0 {
        100.0
    } else {
        100.0 * (1.0 - d as f64 / p as f64)
    };
    Accuracy {
        relevance,
        ordering,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchStep;

    fn sketch_of(stmts: &[u32]) -> FailureSketch {
        FailureSketch {
            steps: stmts
                .iter()
                .enumerate()
                .map(|(i, &s)| SketchStep {
                    step: i + 1,
                    tid: 0,
                    stmt: InstrId(s),
                    text: String::new(),
                    loc: String::new(),
                    highlight: false,
                    grey: false,
                    value_note: None,
                    flow_note: None,
                    provenance: Vec::new(),
                })
                .collect(),
            threads: vec![0],
            ..Default::default()
        }
    }

    fn ideal_of(stmts: &[u32], order: &[u32]) -> IdealSketch {
        IdealSketch {
            stmts: stmts.iter().map(|&s| InstrId(s)).collect(),
            access_order: order.iter().map(|&s| InstrId(s)).collect(),
            source_loc: stmts.len(),
        }
    }

    #[test]
    fn perfect_match_is_100() {
        let g = sketch_of(&[1, 2, 3]);
        let i = ideal_of(&[1, 2, 3], &[1, 2, 3]);
        let a = measure(&g, &i);
        assert_eq!(a.relevance, 100.0);
        assert_eq!(a.ordering, 100.0);
        assert_eq!(a.overall(), 100.0);
    }

    #[test]
    fn excess_statements_lower_relevance_only() {
        // Gist tracked a prefix of extra statements (the Fig. 8 grey
        // prefix): 4 shared + 2 excess over 4 ideal -> AR = 4/6.
        let g = sketch_of(&[10, 11, 1, 2, 3, 4]);
        let i = ideal_of(&[1, 2, 3, 4], &[1, 2, 3, 4]);
        let a = measure(&g, &i);
        assert!((a.relevance - 100.0 * 4.0 / 6.0).abs() < 1e-9);
        assert_eq!(a.ordering, 100.0);
    }

    #[test]
    fn missing_statements_lower_relevance() {
        let g = sketch_of(&[1, 2]);
        let i = ideal_of(&[1, 2, 3, 4], &[1, 2]);
        let a = measure(&g, &i);
        assert!((a.relevance - 50.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_order_lowers_ordering() {
        let g = sketch_of(&[1, 3, 2]);
        let i = ideal_of(&[1, 2, 3], &[1, 2, 3]);
        let a = measure(&g, &i);
        assert_eq!(a.relevance, 100.0);
        // One of three pairs disagrees.
        assert!((a.ordering - 100.0 * (1.0 - 1.0 / 3.0)).abs() < 1e-9);
        assert!((a.overall() - (100.0 + a.ordering) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_only_over_ideal_access_stmts() {
        // Statement 9 is in the sketch but not an ideal access statement;
        // it must not affect ordering.
        let g = sketch_of(&[9, 2, 1]);
        let i = ideal_of(&[1, 2, 9], &[2, 1]);
        let a = measure(&g, &i);
        assert_eq!(a.ordering, 100.0);
    }

    #[test]
    fn single_common_stmt_gives_full_ordering() {
        let g = sketch_of(&[1]);
        let i = ideal_of(&[1], &[1]);
        let a = measure(&g, &i);
        assert_eq!(a.ordering, 100.0);
        assert_eq!(a.relevance, 100.0);
    }
}
