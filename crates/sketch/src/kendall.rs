//! Normalized Kendall tau distance between two orderings.
//!
//! The paper measures ordering accuracy with "the normalized Kendall tau
//! distance, which measures the number of pairwise disagreements between
//! two ordered lists" (§5.2), restricted to the elements both lists share.

use std::collections::HashMap;
use std::hash::Hash;

/// Computes `(disagreeing pairs, total pairs)` between the orderings of
/// the elements common to `a` and `b`. Elements appearing multiple times
/// are ranked by first occurrence.
pub fn kendall_tau_counts<T: Eq + Hash + Copy>(a: &[T], b: &[T]) -> (usize, usize) {
    let rank = |xs: &[T]| -> HashMap<T, usize> {
        let mut m = HashMap::new();
        for (i, &x) in xs.iter().enumerate() {
            m.entry(x).or_insert(i);
        }
        m
    };
    let ra = rank(a);
    let rb = rank(b);
    // Common elements, in `a`'s order.
    let mut common: Vec<T> = Vec::new();
    {
        let mut seen = HashMap::new();
        for &x in a {
            if rb.contains_key(&x) && seen.insert(x, ()).is_none() {
                common.push(x);
            }
        }
    }
    let n = common.len();
    if n < 2 {
        return (0, 0);
    }
    let mut disagreements = 0;
    let mut pairs = 0;
    for i in 0..n {
        for j in i + 1..n {
            let (x, y) = (common[i], common[j]);
            let a_order = ra[&x] < ra[&y];
            let b_order = rb[&x] < rb[&y];
            pairs += 1;
            if a_order != b_order {
                disagreements += 1;
            }
        }
    }
    (disagreements, pairs)
}

/// The normalized Kendall tau distance in `[0, 1]` (0 = same order).
/// Returns 0 when fewer than two common elements exist (the paper notes
/// the pair count "can't be zero" in their setting because the failing
/// instruction is always shared; we are defensive anyway).
pub fn normalized_kendall_tau<T: Eq + Hash + Copy>(a: &[T], b: &[T]) -> f64 {
    let (d, p) = kendall_tau_counts(a, b);
    if p == 0 {
        0.0
    } else {
        d as f64 / p as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's example: <A,B,C> vs <A,C,B> has τ = 1 disagreement
    /// (the (B,C) pair) out of 3 pairs.
    #[test]
    fn paper_example() {
        let (d, p) = kendall_tau_counts(&["A", "B", "C"], &["A", "C", "B"]);
        assert_eq!(d, 1);
        assert_eq!(p, 3);
        assert!(
            (normalized_kendall_tau(&["A", "B", "C"], &["A", "C", "B"]) - 1.0 / 3.0).abs() < 1e-12
        );
    }

    #[test]
    fn identical_orderings_have_zero_distance() {
        assert_eq!(normalized_kendall_tau(&[1, 2, 3, 4], &[1, 2, 3, 4]), 0.0);
    }

    #[test]
    fn reversed_orderings_have_distance_one() {
        assert_eq!(normalized_kendall_tau(&[1, 2, 3], &[3, 2, 1]), 1.0);
    }

    #[test]
    fn restricted_to_common_elements() {
        // b lacks 2; only pairs over {1,3} are counted.
        let (d, p) = kendall_tau_counts(&[1, 2, 3], &[3, 1]);
        assert_eq!(p, 1);
        assert_eq!(d, 1);
    }

    #[test]
    fn fewer_than_two_common_is_zero() {
        assert_eq!(normalized_kendall_tau(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(normalized_kendall_tau::<i32>(&[], &[]), 0.0);
        assert_eq!(normalized_kendall_tau(&[5], &[5]), 0.0);
    }

    #[test]
    fn duplicates_ranked_by_first_occurrence() {
        let (d, p) = kendall_tau_counts(&[1, 2, 1], &[1, 2]);
        assert_eq!((d, p), (0, 1));
    }
}
