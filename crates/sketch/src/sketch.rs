//! The failure sketch data structure.

use gist_ir::InstrId;
use gist_predictors::PredictorStats;

/// One row of a failure sketch: a statement executed at a time step by a
/// thread.
#[derive(Clone, Debug, PartialEq)]
pub struct SketchStep {
    /// 1-based time step (paper: "execution steps are enumerated along the
    /// flow of time").
    pub step: usize,
    /// Executing thread.
    pub tid: u32,
    /// The statement.
    pub stmt: InstrId,
    /// Display text (original source line if known, else rendered IR).
    pub text: String,
    /// `file:line` attribution.
    pub loc: String,
    /// Marked as (part of) the best failure predictor — rendered as the
    /// paper's dotted rectangle.
    pub highlight: bool,
    /// Not part of the ideal sketch (the grey prefix of Fig. 8).
    pub grey: bool,
    /// Data value annotation shown in the value column at this step
    /// (e.g. `0` for `f->mut` at the failing step of Fig. 1).
    pub value_note: Option<String>,
    /// Inter-thread value-flow provenance: where the value this step
    /// observes may have been written by *another thread*, per the sparse
    /// value-flow graph's interleaved edges (e.g. `value from T1 store at
    /// pbzip2.c:21`). Rendered as a section under the sketch table.
    pub flow_note: Option<String>,
    /// Provenance chain: flight-recorder journal sequence numbers of the
    /// evidence that put this step in the sketch, most specific first
    /// (watchpoint hit → PT decode → promotion decision → slice
    /// criterion). Empty when journaling is off (`metrics-off`). Resolved
    /// by `gist-trace explain` and the `--explain` render mode.
    pub provenance: Vec<u64>,
}

/// A complete failure sketch.
#[derive(Clone, Debug, Default)]
pub struct FailureSketch {
    /// Title, e.g. `Failure Sketch for pbzip2 bug #1`.
    pub title: String,
    /// The failure classification line, e.g.
    /// `Concurrency bug, segmentation fault`.
    pub failure_type: String,
    /// Label of the tracked value column (e.g. `f->mut`), if any.
    pub value_column: Option<String>,
    /// Rows in time order.
    pub steps: Vec<SketchStep>,
    /// Threads in column order.
    pub threads: Vec<u32>,
    /// The ranked failure predictors backing the highlights (top per
    /// category first).
    pub predictors: Vec<PredictorStats>,
    /// The statement where the failure manifests.
    pub failing_stmt: Option<InstrId>,
}

impl FailureSketch {
    /// Distinct statements in the sketch, in step order.
    pub fn stmts(&self) -> Vec<InstrId> {
        let mut seen = std::collections::HashSet::new();
        self.steps
            .iter()
            .map(|s| s.stmt)
            .filter(|s| seen.insert(*s))
            .collect()
    }

    /// Statements excluding the grey prefix.
    pub fn core_stmts(&self) -> Vec<InstrId> {
        let mut seen = std::collections::HashSet::new();
        self.steps
            .iter()
            .filter(|s| !s.grey)
            .map(|s| s.stmt)
            .filter(|s| seen.insert(*s))
            .collect()
    }

    /// Number of sketch statements (IR unit of Table 1's sketch size).
    pub fn len(&self) -> usize {
        self.stmts().len()
    }

    /// True if the sketch has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps of one thread, in time order.
    pub fn thread_steps(&self, tid: u32) -> Vec<&SketchStep> {
        self.steps.iter().filter(|s| s.tid == tid).collect()
    }

    /// True if `stmt` appears highlighted (failure-predicting).
    pub fn is_highlighted(&self, stmt: InstrId) -> bool {
        self.steps.iter().any(|s| s.stmt == stmt && s.highlight)
    }

    /// Drops the steps whose statement fails `keep`, renumbering the
    /// survivors and recomputing the thread columns. The failing statement
    /// is always retained. Returns the number of steps pruned.
    ///
    /// The sketch engine calls this with a reachability predicate derived
    /// from the reaching-definitions analysis: a step with no data or
    /// control path to the failing statement only pads the sketch the
    /// developer reads (§3.4 aims for *concise* sketches).
    pub fn retain_steps(&mut self, keep: impl Fn(InstrId) -> bool) -> usize {
        let before = self.steps.len();
        self.steps
            .retain(|s| Some(s.stmt) == self.failing_stmt || keep(s.stmt));
        for (i, s) in self.steps.iter_mut().enumerate() {
            s.step = i + 1;
        }
        let mut threads: Vec<u32> = self.steps.iter().map(|s| s.tid).collect();
        threads.sort_unstable();
        threads.dedup();
        self.threads = threads;
        before - self.steps.len()
    }

    /// Renders the sketch as text (see [`crate::render`]).
    pub fn render(&self) -> String {
        crate::render::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(step: usize, tid: u32, stmt: u32, grey: bool) -> SketchStep {
        SketchStep {
            step,
            tid,
            stmt: InstrId(stmt),
            text: format!("stmt{stmt}"),
            loc: String::new(),
            highlight: false,
            grey,
            value_note: None,
            flow_note: None,
            provenance: Vec::new(),
        }
    }

    #[test]
    fn stmts_dedup_in_order() {
        let sketch = FailureSketch {
            steps: vec![
                step(1, 0, 5, false),
                step(2, 1, 7, false),
                step(3, 0, 5, false),
            ],
            threads: vec![0, 1],
            ..Default::default()
        };
        assert_eq!(sketch.stmts(), vec![InstrId(5), InstrId(7)]);
        assert_eq!(sketch.len(), 2);
    }

    #[test]
    fn core_stmts_skip_grey() {
        let sketch = FailureSketch {
            steps: vec![step(1, 0, 1, true), step(2, 0, 2, false)],
            threads: vec![0],
            ..Default::default()
        };
        assert_eq!(sketch.core_stmts(), vec![InstrId(2)]);
        assert_eq!(sketch.stmts().len(), 2);
    }

    #[test]
    fn thread_steps_filter_by_tid() {
        let sketch = FailureSketch {
            steps: vec![
                step(1, 0, 1, false),
                step(2, 1, 2, false),
                step(3, 0, 3, false),
            ],
            threads: vec![0, 1],
            ..Default::default()
        };
        assert_eq!(sketch.thread_steps(0).len(), 2);
        assert_eq!(sketch.thread_steps(1).len(), 1);
    }

    #[test]
    fn retain_steps_renumbers_and_keeps_failing_stmt() {
        let mut sketch = FailureSketch {
            steps: vec![
                step(1, 0, 1, false),
                step(2, 1, 2, false),
                step(3, 0, 3, false),
            ],
            threads: vec![0, 1],
            failing_stmt: Some(InstrId(3)),
            ..Default::default()
        };
        // Predicate rejects everything: only the failing stmt survives.
        let pruned = sketch.retain_steps(|s| s == InstrId(1));
        assert_eq!(pruned, 1);
        assert_eq!(sketch.stmts(), vec![InstrId(1), InstrId(3)]);
        assert_eq!(
            sketch.steps.iter().map(|s| s.step).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(sketch.threads, vec![0], "tid 1 column dropped");
    }

    #[test]
    fn highlight_lookup() {
        let mut s = step(1, 0, 9, false);
        s.highlight = true;
        let sketch = FailureSketch {
            steps: vec![s],
            threads: vec![0],
            ..Default::default()
        };
        assert!(sketch.is_highlighted(InstrId(9)));
        assert!(!sketch.is_highlighted(InstrId(1)));
    }
}
