//! Failure sketches: construction-side data structures, the text renderer
//! that reproduces the look of the paper's Figs. 1, 7 and 8, and the
//! accuracy metrics of §5.2.
//!
//! A failure sketch is "a high level execution trace that includes the
//! statements that lead to a failure and the differences between the
//! properties of failing and successful program executions". Its elements:
//!
//! * time flows downward, steps enumerated along the flow,
//! * one column per thread, statements placed at their step,
//! * the *differences* between failing and successful runs — the
//!   highest-F-measure failure predictors — are marked (the paper's dotted
//!   rectangles; here `[[ ... ]]`),
//! * data values appear in a value column (e.g. `f->mut = 0` at step 7 of
//!   Fig. 1),
//! * statements that Gist tracked but that are not part of the *ideal*
//!   sketch render grey (here a `~` prefix), as in Fig. 8.
//!
//! Accuracy ([`accuracy`]) compares a Gist-computed sketch against a
//! hand-built ideal sketch: relevance `A_R = 100·|G∩I|/|G∪I|`, ordering
//! `A_O = 100·(1 − τ/#pairs)` with τ the Kendall tau distance over shared
//! memory-access statements, and overall `A = (A_R + A_O)/2`.

pub mod accuracy;
pub mod kendall;
pub mod render;
pub mod sketch;

pub use accuracy::{Accuracy, IdealSketch};
pub use kendall::normalized_kendall_tau;
pub use sketch::{FailureSketch, SketchStep};
