//! Text rendering of failure sketches, in the layout of the paper's
//! Figs. 1, 7 and 8: a time column, one column per thread, and a value
//! column; the best failure predictors are boxed `[[ ... ]]` (the paper's
//! dotted rectangles) and non-ideal prefix statements are prefixed `~`
//! (the paper's grey statements).

use crate::sketch::FailureSketch;

/// Width of each thread column.
const COL_WIDTH: usize = 34;

/// Renders a sketch to text.
pub fn render(sketch: &FailureSketch) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}\n", sketch.title));
    out.push_str(&format!("Type: {}\n\n", sketch.failure_type));

    // Header.
    let mut header = String::from("Time |");
    for t in &sketch.threads {
        header.push_str(&format!(" {:<w$}|", format!("Thread T{t}"), w = COL_WIDTH));
    }
    if let Some(v) = &sketch.value_column {
        header.push_str(&format!(" {v}"));
    }
    out.push_str(&header);
    out.push('\n');
    let mut rule = String::from("-----+");
    for _ in &sketch.threads {
        rule.push_str(&"-".repeat(COL_WIDTH + 1));
        rule.push('+');
    }
    out.push_str(&rule);
    out.push('\n');

    for s in &sketch.steps {
        let mut row = format!("{:>4} |", s.step);
        for &t in &sketch.threads {
            if t == s.tid {
                let mut text = s.text.clone();
                if s.highlight {
                    text = format!("[[ {text} ]]");
                }
                if s.grey {
                    text = format!("~{text}");
                }
                if text.len() > COL_WIDTH {
                    text.truncate(COL_WIDTH - 1);
                    text.push('…');
                }
                row.push_str(&format!(" {text:<COL_WIDTH$}|"));
            } else {
                row.push_str(&format!(" {:<COL_WIDTH$}|", ""));
            }
        }
        if let Some(v) = &s.value_note {
            row.push_str(&format!(" {v}"));
        }
        out.push_str(row.trim_end());
        out.push('\n');
    }

    let flows: Vec<&crate::sketch::SketchStep> = sketch
        .steps
        .iter()
        .filter(|s| s.flow_note.is_some())
        .collect();
    if !flows.is_empty() {
        out.push_str("\nInter-thread value flow:\n");
        for s in flows {
            out.push_str(&format!(
                "  step {:>3}  {}\n",
                s.step,
                s.flow_note.as_deref().unwrap_or_default()
            ));
        }
    }

    if !sketch.predictors.is_empty() {
        out.push_str("\nBest failure predictors (Fβ, β=0.5):\n");
        for p in &sketch.predictors {
            out.push_str(&format!(
                "  [{}] {:?}  P={:.2} R={:.2} F={:.2}\n",
                p.predictor.category(),
                p.predictor,
                p.precision(),
                p.recall(),
                p.f_measure(0.5),
            ));
        }
    }
    out.push_str("\nLegend: [[ ]] failure-predicting difference; ~ not in ideal sketch\n");
    out
}

/// Renders a sketch with its provenance chains (the `--explain` mode):
/// the normal sketch followed by one block per step listing the journal
/// evidence that put it there, most specific first (hit → decode →
/// promotion → slice criterion).
///
/// `resolve` maps a journal seq-no to a one-line description (from a
/// loaded journal); unresolvable seq-nos render as `#<seq> <unresolved>`,
/// and steps with no provenance (journaling off) say so explicitly.
pub fn render_explain(sketch: &FailureSketch, resolve: &dyn Fn(u64) -> Option<String>) -> String {
    let mut out = render(sketch);
    out.push_str("\nProvenance (journal seq-nos; most specific evidence first):\n");
    for s in &sketch.steps {
        out.push_str(&format!("  step {:>3}  {}\n", s.step, s.text.trim_end()));
        if s.provenance.is_empty() {
            out.push_str("        (no provenance recorded — journaling off?)\n");
            continue;
        }
        for &seq in &s.provenance {
            match resolve(seq) {
                Some(line) => out.push_str(&format!("        #{seq:<6} {line}\n")),
                None => out.push_str(&format!("        #{seq:<6} <unresolved>\n")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchStep;
    use gist_ir::InstrId;

    fn demo_sketch() -> FailureSketch {
        FailureSketch {
            title: "Failure Sketch for pbzip2 bug #1".into(),
            failure_type: "Concurrency bug, segmentation fault".into(),
            value_column: Some("f->mut".into()),
            threads: vec![1, 2],
            steps: vec![
                SketchStep {
                    step: 1,
                    tid: 1,
                    stmt: InstrId(0),
                    text: "queue* f = init(size);".into(),
                    loc: "pbzip2.c:10".into(),
                    highlight: false,
                    grey: false,
                    value_note: None,
                    flow_note: None,
                    provenance: Vec::new(),
                },
                SketchStep {
                    step: 2,
                    tid: 1,
                    stmt: InstrId(1),
                    text: "f->mut = NULL;".into(),
                    loc: "pbzip2.c:21".into(),
                    highlight: true,
                    grey: false,
                    value_note: Some("0".into()),
                    flow_note: None,
                    provenance: vec![4, 2],
                },
                SketchStep {
                    step: 3,
                    tid: 2,
                    stmt: InstrId(2),
                    text: "mutex_unlock(f->mut);".into(),
                    loc: "pbzip2.c:41".into(),
                    highlight: true,
                    grey: false,
                    value_note: Some("0  <- Failure (segfault)".into()),
                    flow_note: Some("value from T1 store at pbzip2.c:21".into()),
                    provenance: vec![7, 2],
                },
            ],
            predictors: Vec::new(),
            failing_stmt: Some(InstrId(2)),
        }
    }

    #[test]
    fn renders_title_and_columns() {
        let text = render(&demo_sketch());
        assert!(text.contains("Failure Sketch for pbzip2 bug #1"));
        assert!(text.contains("Type: Concurrency bug, segmentation fault"));
        assert!(text.contains("Thread T1"));
        assert!(text.contains("Thread T2"));
        assert!(text.contains("f->mut"));
    }

    #[test]
    fn highlights_use_double_brackets() {
        let text = render(&demo_sketch());
        assert!(text.contains("[[ f->mut = NULL; ]]"));
        assert!(text.contains("[[ mutex_unlock(f->mut); ]]"));
        assert!(!text.contains("[[ queue* f"));
    }

    #[test]
    fn statements_appear_in_their_thread_column() {
        let text = render(&demo_sketch());
        // T2's statement must start after T1's column: find the row.
        let row = text
            .lines()
            .find(|l| l.contains("mutex_unlock"))
            .expect("row exists");
        let col_start = row.find("[[ mutex_unlock").unwrap();
        assert!(
            col_start > 6 + 34,
            "T2 statement must be in the second column: {row}"
        );
    }

    #[test]
    fn value_notes_rendered_at_their_step() {
        let text = render(&demo_sketch());
        let row = text.lines().find(|l| l.contains("mutex_unlock")).unwrap();
        assert!(row.contains("Failure (segfault)"));
    }

    #[test]
    fn flow_notes_render_as_a_section() {
        let text = render(&demo_sketch());
        assert!(text.contains("Inter-thread value flow:"));
        assert!(text.contains("step   3  value from T1 store at pbzip2.c:21"));
        // A sketch without flow notes omits the section entirely.
        let mut s = demo_sketch();
        for step in &mut s.steps {
            step.flow_note = None;
        }
        assert!(!render(&s).contains("Inter-thread value flow"));
    }

    #[test]
    fn grey_prefix_marked() {
        let mut s = demo_sketch();
        s.steps[0].grey = true;
        let text = render(&s);
        assert!(text.contains("~queue* f = init(size);"));
    }

    #[test]
    fn explain_lists_provenance_per_step() {
        let resolve = |seq: u64| match seq {
            2 => Some("slice.computed criterion=12".to_owned()),
            4 => Some("watch.hit iid=1 value=0".to_owned()),
            _ => None,
        };
        let text = render_explain(&demo_sketch(), &resolve);
        // The normal sketch still renders up front.
        assert!(text.contains("[[ f->mut = NULL; ]]"));
        // Step 2's chain resolves hit then slice criterion.
        assert!(text.contains("#4      watch.hit iid=1 value=0"));
        assert!(text.contains("#2      slice.computed criterion=12"));
        // Step 3's chain has an unresolvable seq (7) and says so.
        assert!(text.contains("#7      <unresolved>"));
        // Step 1 has no provenance and says so.
        assert!(text.contains("no provenance recorded"));
    }

    #[test]
    fn long_statements_truncated_to_column() {
        let mut s = demo_sketch();
        s.steps[0].text = "x".repeat(100);
        let text = render(&s);
        let row = text.lines().find(|l| l.contains("xxx")).unwrap();
        assert!(row.len() < 120);
        assert!(row.contains('…'));
    }
}
