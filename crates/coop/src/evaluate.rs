//! The per-bug evaluation harness behind Table 1 and Figs. 9/10/12.

use gist_bugbase::BugSpec;
use gist_core::ast::Growth;
use gist_core::server::CostSummary;
use gist_core::{GistConfig, GistServer};
use gist_sketch::accuracy::{measure, Accuracy};
use gist_sketch::FailureSketch;

use crate::fleet::{FleetConfig, SimulatedFleet};

/// Evaluation knobs (mirrors the paper's experimental parameters).
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Initial σ (paper default 2; Fig. 12 sweeps this).
    pub sigma0: usize,
    /// σ growth strategy.
    pub growth: Growth,
    /// Failure recurrences gathered per AsT iteration.
    pub failing_per_iteration: usize,
    /// Run budget per iteration.
    pub max_runs_per_iteration: usize,
    /// AsT iteration cap.
    pub max_iterations: usize,
    /// Track control flow (Intel PT) — Fig. 10 ablation.
    pub enable_control_flow: bool,
    /// Track data flow (watchpoints) — Fig. 10 ablation.
    pub enable_data_flow: bool,
    /// Seed tracking and order watchpoints from the static race detector
    /// (`gist-analysis`) — the ranking ablation toggles this off.
    pub enable_race_ranking: bool,
    /// Alias-aware slicing via points-to — the `--dataflow` ablation
    /// toggles this off.
    pub enable_alias_slicing: bool,
    /// Sparse value-flow (SVFG) slicing with path-feasibility pruning —
    /// the `svfg` ablation toggles this off to quantify the slice and
    /// watchpoint-pool shrinkage.
    pub enable_svfg_slicing: bool,
    /// Happens-before/MHP pruning of interleaving hypotheses and the
    /// watchpoint pool — the `repro mhp` ablation toggles this off.
    pub enable_mhp: bool,
    /// Dead-store pruning of watchpoint plans — the `--dataflow` ablation
    /// toggles this off.
    pub enable_dead_store_pruning: bool,
    /// Fleet shape.
    pub fleet: FleetConfig,
    /// Keep iterating until the sketch covers the ideal sketch and the
    /// root cause (true — the paper's developer refining to the *best*
    /// sketch), or only until AsT saturates (false).
    pub stop_at_root_cause: bool,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            sigma0: 2,
            growth: Growth::Multiplicative,
            failing_per_iteration: 6,
            max_runs_per_iteration: 600,
            max_iterations: 12,
            enable_control_flow: true,
            enable_data_flow: true,
            enable_race_ranking: true,
            enable_alias_slicing: true,
            enable_svfg_slicing: true,
            enable_mhp: true,
            enable_dead_store_pruning: true,
            fleet: FleetConfig::default(),
            stop_at_root_cause: true,
        }
    }
}

/// The outcome of evaluating Gist on one bug (one Table 1 row plus the
/// Fig. 9 accuracy bars).
#[derive(Clone, Debug)]
pub struct BugEvaluation {
    /// Bug short name.
    pub bug: String,
    /// Static slice size in source lines (our miniature).
    pub slice_src: usize,
    /// Static slice size in IR statements.
    pub slice_instrs: usize,
    /// Ideal sketch size in source lines.
    pub ideal_src: usize,
    /// Ideal sketch size in IR statements.
    pub ideal_instrs: usize,
    /// Gist sketch size in source lines.
    pub sketch_src: usize,
    /// Gist sketch size in IR statements.
    pub sketch_instrs: usize,
    /// Failure recurrences consumed.
    pub recurrences: usize,
    /// Total production runs consumed.
    pub total_runs: usize,
    /// AsT iterations.
    pub iterations: usize,
    /// Final σ.
    pub final_sigma: usize,
    /// Relevance accuracy A_R (percent).
    pub relevance: f64,
    /// Ordering accuracy A_O (percent).
    pub ordering: f64,
    /// Overall accuracy A (percent).
    pub overall: f64,
    /// Whether the final sketch contains all root-cause statements.
    pub found_root_cause: bool,
    /// Aggregate client cost counters.
    pub cost: CostSummary,
    /// The rendered final sketch.
    pub sketch: FailureSketch,
}

/// Runs the full Gist pipeline on one bug and scores the result.
pub fn diagnose_bug(bug: &BugSpec, cfg: &EvalConfig) -> BugEvaluation {
    let (_, report) = bug
        .find_failure(2_000)
        .unwrap_or_else(|| panic!("{}: bug never manifests", bug.name));
    let server = GistServer::new(
        &bug.program,
        GistConfig {
            sigma0: cfg.sigma0,
            growth: cfg.growth,
            beta: 0.5,
            failing_runs_per_iteration: cfg.failing_per_iteration,
            max_runs_per_iteration: cfg.max_runs_per_iteration,
            max_iterations: cfg.max_iterations,
            enable_control_flow: cfg.enable_control_flow,
            enable_data_flow: cfg.enable_data_flow,
            enable_race_ranking: cfg.enable_race_ranking,
            enable_alias_slicing: cfg.enable_alias_slicing,
            enable_svfg_slicing: cfg.enable_svfg_slicing,
            enable_mhp: cfg.enable_mhp,
            enable_dead_store_pruning: cfg.enable_dead_store_pruning,
            title: format!("Failure Sketch for {}", bug.display),
            bug_class: bug.class.label().to_owned(),
        },
    );
    let mut fleet = SimulatedFleet::for_bug(bug, cfg.fleet.clone());
    let ideal_set = bug.ideal_stmts();
    let stop_at_root = cfg.stop_at_root_cause;
    let result = server.diagnose(&report, &mut fleet, Some(&ideal_set), &mut |sketch| {
        if !stop_at_root {
            return false;
        }
        let stmts: std::collections::BTreeSet<_> = sketch.stmts().into_iter().collect();
        bug.ideal_covered(&stmts) && bug.root_cause_covered(&stmts)
    });

    let ideal = bug.ideal_sketch();
    let acc: Accuracy = measure(&result.sketch, &ideal);
    let sketch_stmts = result.sketch.stmts();
    let found = {
        let s: std::collections::BTreeSet<_> = sketch_stmts.iter().copied().collect();
        bug.root_cause_covered(&s)
    };
    BugEvaluation {
        bug: bug.name.to_owned(),
        slice_src: result.slice.source_loc_count(&bug.program),
        slice_instrs: result.slice.len(),
        ideal_src: ideal.source_loc,
        ideal_instrs: ideal.stmts.len(),
        sketch_src: bug.program.source_loc_count(sketch_stmts.iter()),
        sketch_instrs: sketch_stmts.len(),
        recurrences: result.recurrences,
        total_runs: result.total_runs,
        iterations: result.iterations,
        final_sigma: result.final_sigma,
        relevance: acc.relevance,
        ordering: acc.ordering,
        overall: acc.overall(),
        found_root_cause: found,
        cost: result.cost,
        sketch: result.sketch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;

    #[test]
    fn pbzip2_diagnosis_finds_root_cause_with_high_accuracy() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        assert!(eval.found_root_cause, "sketch: {}", eval.sketch.render());
        assert!(
            eval.overall >= 70.0,
            "overall accuracy {:.1}%, sketch:\n{}",
            eval.overall,
            eval.sketch.render()
        );
        assert!(eval.recurrences >= 1);
        assert!(eval.slice_instrs >= eval.sketch_instrs / 2);
    }

    #[test]
    fn curl_diagnosis_is_sequential_and_accurate() {
        let bug = bug_by_name("curl-965").unwrap();
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        assert!(eval.found_root_cause, "sketch: {}", eval.sketch.render());
        assert!(eval.overall >= 70.0, "overall {:.1}", eval.overall);
        assert!(eval.sketch.failure_type.contains("Sequential"));
    }

    #[test]
    fn static_only_is_less_accurate_than_full_gist() {
        let bug = bug_by_name("apache-21287").unwrap();
        let full = diagnose_bug(&bug, &EvalConfig::default());
        let static_only = diagnose_bug(
            &bug,
            &EvalConfig {
                enable_control_flow: false,
                enable_data_flow: false,
                stop_at_root_cause: false,
                max_iterations: 4,
                ..EvalConfig::default()
            },
        );
        assert!(
            full.overall >= static_only.overall,
            "full {:.1} vs static {:.1}",
            full.overall,
            static_only.overall
        );
    }
}
