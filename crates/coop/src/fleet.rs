//! The simulated endpoint fleet.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use gist_core::{ClientRunData, Fleet};
use gist_ir::Program;
use gist_pt::{BufferPool, DecodeCache};
use gist_tracking::{InstrumentationPatch, TrackerRuntime};
use gist_vm::{CompiledProgram, RunOutcome, Vm, VmConfig, VmScratch};

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of simulated endpoints (the paper used 1,136).
    pub endpoints: u32,
    /// Virtual cores per endpoint machine.
    pub num_cores: u32,
    /// Collect runs in parallel batches of this size on real OS threads
    /// (1 = sequential). Determinism per run is unaffected: seeds are
    /// assigned before dispatch.
    pub batch: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            endpoints: 64,
            num_cores: 4,
            batch: 1,
        }
    }
}

/// Execution state shared read-only (or behind locks) by every fleet
/// worker thread: one program compilation, one cross-run decode cache,
/// recycled trace storage, and recycled VM scratch allocations.
struct WorkerShared {
    /// The program, lowered once; workers clone the `Arc`, never recompile.
    compiled: Arc<CompiledProgram>,
    /// Memoized PT decode segments, warm across runs and workers.
    decode_cache: Arc<DecodeCache>,
    /// Recycled trace-buffer storage.
    buffer_pool: Arc<BufferPool>,
    /// Recycled VM allocations (memory tables), one per idle worker.
    scratch_pool: Mutex<Vec<VmScratch>>,
}

/// A fleet of simulated endpoints executing one program under a seeded
/// workload. Implements [`Fleet`] for the Gist server.
pub struct SimulatedFleet<'p> {
    program: &'p Program,
    make_config: fn(u64) -> VmConfig,
    config: FleetConfig,
    shared: WorkerShared,
    /// Next run index (also drives endpoint choice and seeds).
    next_run: u64,
    /// Prefetched runs for the currently shipped patch.
    buffer: VecDeque<ClientRunData>,
    /// The patch the buffer was produced under.
    buffered_patch: Option<InstrumentationPatch>,
    /// Total runs executed.
    pub runs: u64,
    /// Runs that failed (any failure).
    pub failing_runs: u64,
}

impl<'p> SimulatedFleet<'p> {
    /// Creates a fleet executing `program` with the given seeded workload.
    /// The program is compiled here, once, before any run dispatches.
    pub fn new(
        program: &'p Program,
        make_config: fn(u64) -> VmConfig,
        config: FleetConfig,
    ) -> Self {
        SimulatedFleet {
            program,
            make_config,
            config,
            shared: WorkerShared {
                compiled: CompiledProgram::shared(program),
                decode_cache: Arc::new(DecodeCache::new()),
                buffer_pool: Arc::new(BufferPool::new()),
                scratch_pool: Mutex::new(Vec::new()),
            },
            next_run: 0,
            buffer: VecDeque::new(),
            buffered_patch: None,
            runs: 0,
            failing_runs: 0,
        }
    }

    /// Creates a fleet for a bugbase bug.
    pub fn for_bug(bug: &'p gist_bugbase::BugSpec, config: FleetConfig) -> Self {
        Self::new(&bug.program, bug.make_config, config)
    }

    /// The workload seed of run `n`: endpoints interleave round-robin and
    /// each endpoint has its own seed stream, so adding endpoints changes
    /// *which* machine sees a failure but not reproducibility.
    fn seed_of(&self, n: u64) -> u64 {
        let endpoint = n % u64::from(self.config.endpoints.max(1));
        let local = n / u64::from(self.config.endpoints.max(1));
        endpoint.wrapping_mul(1_000_003).wrapping_add(local)
    }

    /// Executes one run with the given seed under `patch`. All expensive
    /// state is shared: the compilation is cloned by `Arc`, the decode
    /// cache and buffer/scratch pools recycle across runs and workers.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        program: &Program,
        shared: &WorkerShared,
        make_config: fn(u64) -> VmConfig,
        num_cores: u32,
        patch: &InstrumentationPatch,
        run_id: u64,
        seed: u64,
        parent: &gist_obs::SpanHandle,
    ) -> ClientRunData {
        let _span = gist_obs::span_under(parent, "fleet.worker");
        gist_obs::event!(RunStarted { run: run_id, seed });
        let mut cfg = make_config(seed);
        cfg.num_cores = num_cores;
        let mut tracker = TrackerRuntime::new(program, patch.clone(), num_cores)
            .with_decode_cache(Arc::clone(&shared.decode_cache))
            .with_buffer_pool(Arc::clone(&shared.buffer_pool));
        let scratch = shared
            .scratch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default();
        let mut vm = Vm::with_scratch(program, Arc::clone(&shared.compiled), cfg, scratch);
        let result = vm.run(&mut [&mut tracker]);
        let data = ClientRunData {
            run_id,
            outcome: match result.outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            },
            trace: tracker.finish(),
            retired: result.steps,
        };
        gist_obs::event!(RunFinished {
            run: run_id,
            failing: data.outcome.is_some(),
            retired: result.steps,
            hits: data.trace.hits.len() as u64,
        });
        shared
            .scratch_pool
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(vm.into_scratch());
        data
    }

    /// Fills the buffer with a batch of runs for `patch`, in parallel when
    /// `config.batch > 1`.
    fn refill(&mut self, patch: &InstrumentationPatch) {
        let batch = self.config.batch.max(1);
        // Batch shape depends on the execution configuration, not on the
        // logical work, so it is a histogram — counters must stay identical
        // across batch sizes (the determinism contract).
        gist_obs::histogram!("fleet.batch_occupancy").record(batch as u64);
        let ids_seeds: Vec<(u64, u64)> = (0..batch as u64)
            .map(|i| {
                let n = self.next_run + i;
                (n, self.seed_of(n))
            })
            .collect();
        self.next_run += batch as u64;
        // Worker spans parent under whatever span dispatched the fleet
        // (typically `server.collect`), even on worker OS threads.
        let parent = gist_obs::current_span_handle();
        if batch == 1 {
            let (id, seed) = ids_seeds[0];
            self.buffer.push_back(Self::execute(
                self.program,
                &self.shared,
                self.make_config,
                self.config.num_cores,
                patch,
                id,
                seed,
                &parent,
            ));
        } else {
            let results: Mutex<Vec<(u64, ClientRunData)>> = Mutex::new(Vec::with_capacity(batch));
            let program = self.program;
            let shared = &self.shared;
            let make_config = self.make_config;
            let cores = self.config.num_cores;
            std::thread::scope(|s| {
                for &(id, seed) in &ids_seeds {
                    let results = &results;
                    let patch = &*patch;
                    let parent = &parent;
                    s.spawn(move || {
                        let run = Self::execute(
                            program,
                            shared,
                            make_config,
                            cores,
                            patch,
                            id,
                            seed,
                            parent,
                        );
                        results.lock().expect("fleet results lock").push((id, run));
                    });
                }
            });
            let mut collected = results.into_inner().expect("fleet worker panicked");
            collected.sort_by_key(|(id, _)| *id);
            self.buffer
                .extend(collected.into_iter().map(|(_, run)| run));
        }
        self.buffered_patch = Some(patch.clone());
    }
}

impl Fleet for SimulatedFleet<'_> {
    fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
        if self.buffered_patch.as_ref() != Some(patch) {
            // Patch changed (new AsT iteration / watch group): discard any
            // prefetched runs; those executions simply never report back.
            // Discard counts also depend on batch shape -> histogram.
            gist_obs::histogram!("fleet.runs_discarded").record(self.buffer.len() as u64);
            self.buffer.clear();
            self.buffered_patch = None;
        }
        if self.buffer.is_empty() {
            self.refill(patch);
        }
        let run = self.buffer.pop_front().expect("refill produced runs");
        self.runs += 1;
        gist_obs::counter!("fleet.runs_dispatched").inc();
        if run.outcome.is_some() {
            self.failing_runs += 1;
            gist_obs::counter!("fleet.failing_runs").inc();
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;

    #[test]
    fn sequential_and_parallel_fleets_agree() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let patch = InstrumentationPatch::default();
        let runs_with = |batch: usize| {
            let mut fleet = SimulatedFleet::for_bug(
                &bug,
                FleetConfig {
                    endpoints: 8,
                    num_cores: 4,
                    batch,
                },
            );
            (0..12)
                .map(|_| {
                    let r = Fleet::next_run(&mut fleet, &patch);
                    (r.run_id, r.outcome.is_some(), r.retired)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(runs_with(1), runs_with(4), "batching must not change runs");
    }

    /// The bug's shipped patch: what the server would plan for the first
    /// watch group over an 8-statement slice prefix of the failure.
    fn planned_patch(bug: &gist_bugbase::BugSpec) -> InstrumentationPatch {
        let (_, report) = bug.find_failure(2_000).expect("bug manifests");
        let slicer = gist_slicing::StaticSlicer::new(&bug.program);
        let slice = slicer.compute(report.failing_stmt);
        let planner = gist_tracking::Planner::new(&bug.program, slicer.ticfg());
        planner.plan(slice.prefix(8), 0)
    }

    /// Differential: for EVERY bugbase bug under its shipped patch, the
    /// batched fleet is run-for-run indistinguishable from the sequential
    /// one — same outcomes, same retired counts, and the same watchpoint
    /// hit sequences. 16 runs is a multiple of the batch size, so the
    /// batch arm executes exactly as many runs as the sequential arm.
    #[test]
    fn batched_fleets_agree_on_every_bug_under_shipped_patch() {
        for bug in gist_bugbase::all_bugs() {
            let patch = planned_patch(&bug);
            let runs_with = |batch: usize| {
                let mut fleet = SimulatedFleet::for_bug(
                    &bug,
                    FleetConfig {
                        endpoints: 8,
                        num_cores: 4,
                        batch,
                    },
                );
                (0..16)
                    .map(|_| {
                        let r = Fleet::next_run(&mut fleet, &patch);
                        (
                            r.run_id,
                            r.outcome.map(|o| format!("{o:?}")),
                            r.retired,
                            r.trace.hits,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                runs_with(1),
                runs_with(8),
                "{}: batch=8 must match sequential runs exactly",
                bug.name
            );
        }
    }

    #[test]
    fn failure_counter_tracks_outcomes() {
        let bug = bug_by_name("curl-965").unwrap();
        let patch = InstrumentationPatch::default();
        let mut fleet = SimulatedFleet::for_bug(&bug, FleetConfig::default());
        for _ in 0..9 {
            Fleet::next_run(&mut fleet, &patch);
        }
        assert_eq!(fleet.runs, 9);
        // Curl fails on every third seed (seeds 0,3,6 of endpoint streams
        // spread across endpoints, so at least one failure in 9 runs).
        assert!(fleet.failing_runs > 0);
    }

    #[test]
    fn patch_change_discards_prefetched_runs() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let mut fleet = SimulatedFleet::for_bug(
            &bug,
            FleetConfig {
                endpoints: 4,
                num_cores: 4,
                batch: 6,
            },
        );
        let p1 = InstrumentationPatch::default();
        let p2 = InstrumentationPatch {
            pt_on_at_start: true,
            ..InstrumentationPatch::default()
        };
        let _ = Fleet::next_run(&mut fleet, &p1);
        // Buffer holds 5 prefetched runs for p1; switching patches drops them.
        let r = Fleet::next_run(&mut fleet, &p2);
        assert!(
            r.run_id >= 6,
            "prefetched p1 runs discarded, got {}",
            r.run_id
        );
    }

    #[test]
    fn distinct_endpoints_have_distinct_seed_streams() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let fleet = SimulatedFleet::for_bug(
            &bug,
            FleetConfig {
                endpoints: 16,
                ..FleetConfig::default()
            },
        );
        let s0 = fleet.seed_of(0);
        let s1 = fleet.seed_of(1);
        let s16 = fleet.seed_of(16);
        assert_ne!(s0, s1);
        assert_eq!(s16, s0 + 1, "endpoint 0's second run follows its stream");
    }
}
