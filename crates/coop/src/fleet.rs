//! The simulated endpoint fleet.
//!
//! Batched collection runs on a *persistent* worker pool with a
//! work-stealing run queue (see DESIGN.md "Fleet architecture"): workers
//! are created once per [`SimulatedFleet`], each batch publishes a
//! pre-materialized descriptor array split into per-executor deques,
//! executors pop their own range and steal from others when empty, and
//! results land in pre-sized per-slot output cells — no results lock, no
//! scratch-pool lock, no post-hoc sort. Expensive state is thread-local
//! for the worker's lifetime (VM scratch, PT buffer pool, decode-cache
//! shard, deferred metric accumulators); cross-worker sharing happens only
//! at batch boundaries via epoch-published decode-cache snapshots.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use gist_core::{ClientRunData, Fleet};
use gist_ir::Program;
use gist_obs::json::Json;
use gist_obs::HistogramSnapshot;
use gist_pt::{BufferPool, DecodeCache, DecodeCacheShard};
use gist_tracking::{InstrumentationPatch, TrackerRuntime};
use gist_vm::{CompiledProgram, RunOutcome, Vm, VmConfig, VmScratch};

/// Fleet configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of simulated endpoints (the paper used 1,136).
    pub endpoints: u32,
    /// Virtual cores per endpoint machine.
    pub num_cores: u32,
    /// Collect runs in parallel batches of this size on the persistent
    /// worker pool (1 = sequential, no pool). Determinism per run is
    /// unaffected: seeds are assigned before dispatch.
    pub batch: usize,
    /// Worker threads backing the pool. The dispatching thread always
    /// participates as executor 0, so total parallelism is `workers + 1`.
    /// `None` derives from [`std::thread::available_parallelism`] (cores −
    /// 1); `Some(n)` forces exactly `n` threads — tests use this to
    /// exercise real cross-thread stealing even on small machines. Either
    /// way the count is capped at `batch − 1` (more executors than runs
    /// per batch would only idle).
    pub workers: Option<usize>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            endpoints: 64,
            num_cores: 4,
            batch: 1,
            workers: None,
        }
    }
}

/// Worker threads the machine supports beyond the dispatching thread.
fn machine_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .saturating_sub(1)
}

/// A fixed log₂ histogram with the same bucket layout as
/// [`gist_obs::Histogram`], but plain (non-atomic) and fleet-local:
/// contention statistics are scheduling-dependent, so they must never
/// enter the global metric registry (whose counter/histogram snapshots
/// are part of the determinism contract).
#[derive(Clone, Debug)]
struct LocalHist {
    buckets: [u64; gist_obs::NUM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LocalHist {
    fn default() -> Self {
        LocalHist {
            buckets: [0; gist_obs::NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LocalHist {
    fn record(&mut self, v: u64) {
        self.buckets[gist_obs::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (gist_obs::bucket_floor(i), n))
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets,
        }
    }
}

/// Cumulative per-executor contention statistics (executor 0 is the
/// dispatching thread). Harvested via [`SimulatedFleet::contention_stats`]
/// and emitted into the BENCH report's throughput section.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Runs this executor completed.
    pub runs: u64,
    /// Batches this executor participated in.
    pub batches: u64,
    /// Descriptors stolen from other executors' deques.
    pub steals: u64,
    /// Decode-shard probes answered from the snapshot or fresh map.
    pub shard_hits: u64,
    /// Decode-shard probes that fell through to a cold decode.
    pub shard_misses: u64,
    /// Per-batch steal counts.
    steal_hist: LocalHist,
    /// Per-batch idle microseconds waiting for work to arrive.
    wait_hist: LocalHist,
}

impl WorkerStats {
    /// Distribution of steals per batch.
    pub fn steal_hist(&self) -> HistogramSnapshot {
        self.steal_hist.snapshot()
    }

    /// Distribution of queue-empty wait times per batch, in microseconds.
    pub fn wait_hist(&self) -> HistogramSnapshot {
        self.wait_hist.snapshot()
    }

    fn absorb_batch(&mut self, local: &BatchLocal, waited_us: u64) {
        self.runs += local.runs;
        self.batches += 1;
        self.steals += local.steals;
        self.shard_hits += local.shard_hits;
        self.shard_misses += local.shard_misses;
        self.steal_hist.record(local.steals);
        self.wait_hist.record(waited_us);
    }

    fn to_value(&self) -> Json {
        let probes = self.shard_hits + self.shard_misses;
        let hit_ratio = if probes == 0 {
            0.0
        } else {
            self.shard_hits as f64 / probes as f64
        };
        Json::Obj(vec![
            ("runs".into(), Json::U64(self.runs)),
            ("batches".into(), Json::U64(self.batches)),
            ("steals".into(), Json::U64(self.steals)),
            ("shard_hits".into(), Json::U64(self.shard_hits)),
            ("shard_misses".into(), Json::U64(self.shard_misses)),
            ("shard_hit_ratio".into(), Json::F64(hit_ratio)),
            ("steal_hist".into(), self.steal_hist.snapshot().to_value()),
            ("wait_us_hist".into(), self.wait_hist.snapshot().to_value()),
        ])
    }
}

/// Contention statistics for every executor of a fleet, in executor order
/// (index 0 = the dispatching thread).
#[derive(Clone, Debug, Default)]
pub struct FleetStats {
    /// One entry per executor.
    pub workers: Vec<WorkerStats>,
}

impl FleetStats {
    /// Renders for the BENCH report's throughput section. Contention data
    /// is scheduling-dependent by nature, so it belongs next to the timing
    /// numbers, never in the deterministic metrics section.
    pub fn to_value(&self) -> Json {
        Json::Obj(vec![
            (
                "steals".into(),
                Json::U64(self.workers.iter().map(|w| w.steals).sum()),
            ),
            (
                "shard_hits".into(),
                Json::U64(self.workers.iter().map(|w| w.shard_hits).sum()),
            ),
            (
                "shard_misses".into(),
                Json::U64(self.workers.iter().map(|w| w.shard_misses).sum()),
            ),
            (
                "workers".into(),
                Json::Arr(self.workers.iter().map(WorkerStats::to_value).collect()),
            ),
        ])
    }
}

/// Per-batch, per-executor tallies, merged into [`WorkerStats`] at batch
/// end (plain fields on the executor's stack — nothing shared).
#[derive(Default)]
struct BatchLocal {
    runs: u64,
    steals: u64,
    shard_hits: u64,
    shard_misses: u64,
}

/// State an executor keeps across batches: recycled VM scratch, a private
/// PT buffer pool, and a decode-cache shard warmed from the shared
/// epoch-published snapshot. All of it is single-owner — the hot loop
/// acquires no locks.
struct ExecutorCtx {
    scratch: VmScratch,
    shard: DecodeCacheShard,
    buffer_pool: Arc<BufferPool>,
}

impl ExecutorCtx {
    fn new(cache: &DecodeCache) -> Self {
        ExecutorCtx {
            scratch: VmScratch::default(),
            shard: cache.shard(),
            buffer_pool: Arc::new(BufferPool::new()),
        }
    }
}

/// One run descriptor index deque: a contiguous range of the batch's
/// descriptor array, packed `head << 32 | tail`. The owner pops at `head`,
/// thieves pop at `tail − 1`; both CAS the same word, and since `head`
/// only grows and `tail` only shrinks there is no ABA.
struct Deque(AtomicU64);

impl Deque {
    fn new(head: u32, tail: u32) -> Self {
        Deque(AtomicU64::new((u64::from(head) << 32) | u64::from(tail)))
    }

    fn unpack(v: u64) -> (u32, u32) {
        ((v >> 32) as u32, v as u32)
    }

    /// Owner pop from the front; `None` when empty.
    fn pop_front(&self) -> Option<usize> {
        let mut v = self.0.load(Ordering::Relaxed);
        loop {
            let (h, t) = Self::unpack(v);
            if h >= t {
                return None;
            }
            let next = (u64::from(h + 1) << 32) | u64::from(t);
            match self
                .0
                .compare_exchange_weak(v, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(h as usize),
                Err(cur) => v = cur,
            }
        }
    }

    /// Thief pop from the back; `None` when empty.
    fn steal_back(&self) -> Option<usize> {
        let mut v = self.0.load(Ordering::Relaxed);
        loop {
            let (h, t) = Self::unpack(v);
            if h >= t {
                return None;
            }
            let next = (u64::from(h) << 32) | u64::from(t - 1);
            match self
                .0
                .compare_exchange_weak(v, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some((t - 1) as usize),
                Err(cur) => v = cur,
            }
        }
    }
}

/// Pre-sized per-run output cells. Each slot is written by exactly one
/// executor (the one whose deque pop claimed that index) and read by the
/// dispatching thread only after every executor has finished the batch,
/// so batch output order is deterministic by construction — no results
/// lock, no sort.
struct Slots(Vec<UnsafeCell<Option<ClientRunData>>>);

// SAFETY: slot `i` is accessed mutably only by the single executor that
// claimed index `i` via the deque CAS; the dispatching thread reads slots
// only after `BatchJob::remaining` reaches zero, whose Release decrements
// / Acquire load order every slot write before every slot read.
unsafe impl Sync for Slots {}

impl Slots {
    fn new(n: usize) -> Self {
        Slots((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// SAFETY: caller must have claimed index `i` from a deque.
    unsafe fn put(&self, i: usize, run: ClientRunData) {
        *self.0[i].get() = Some(run);
    }

    /// SAFETY: caller must be the dispatching thread, after batch completion.
    unsafe fn take(&self, i: usize) -> Option<ClientRunData> {
        (*self.0[i].get()).take()
    }
}

/// One published batch: the descriptor array, per-executor deques over it,
/// and the output slots.
struct BatchJob {
    /// `(run id, workload seed)`, in run-id order.
    descriptors: Vec<(u64, u64)>,
    patch: InstrumentationPatch,
    /// Span parent for worker spans (typically `server.collect`).
    parent: gist_obs::SpanHandle,
    /// One deque per executor; executor `k` owns `deques[k]`.
    deques: Vec<Deque>,
    slots: Slots,
    /// Worker threads still executing this batch (the dispatching thread
    /// is not counted — it runs inline and then waits for zero).
    remaining: AtomicUsize,
}

impl BatchJob {
    /// Claims the next descriptor index for executor `me`: own deque
    /// first, then steal round-robin. `None` means the batch is drained —
    /// descriptors are fully materialized at publish, so an all-empty scan
    /// is conclusive.
    fn claim(&self, me: usize, local: &mut BatchLocal) -> Option<usize> {
        if let Some(i) = self.deques[me].pop_front() {
            return Some(i);
        }
        let n = self.deques.len();
        for off in 1..n {
            if let Some(i) = self.deques[(me + off) % n].steal_back() {
                local.steals += 1;
                return Some(i);
            }
        }
        None
    }
}

/// State shared between the dispatching thread and the pool workers.
struct PoolShared {
    /// Owned clone of the fleet's program: worker threads are `'static`,
    /// so they cannot borrow the caller's `&Program`. `CompiledProgram`
    /// is interned by fingerprint, so the clone shares the compilation.
    program: Arc<Program>,
    compiled: Arc<CompiledProgram>,
    decode_cache: Arc<DecodeCache>,
    make_config: fn(u64) -> VmConfig,
    num_cores: u32,
    state: Mutex<PoolState>,
    /// Signaled when a new batch epoch is published (or shutdown).
    work_ready: Condvar,
    /// Signaled by the last worker finishing a batch.
    work_done: Condvar,
    /// Cumulative stats for worker executors 1..=N, locked once per
    /// worker per batch (off the per-run path).
    worker_stats: Mutex<Vec<WorkerStats>>,
}

struct PoolState {
    /// Bumped per published batch; workers latch it to detect new work.
    epoch: u64,
    job: Option<Arc<BatchJob>>,
    shutdown: bool,
    /// A worker executor panicked; surfaced on the dispatching thread.
    panicked: bool,
}

impl PoolShared {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The persistent worker pool of one fleet.
struct FleetPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for FleetPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Body of one pool worker thread.
fn worker_loop(shared: Arc<PoolShared>, exec_idx: usize) {
    let mut ctx = ExecutorCtx::new(&shared.decode_cache);
    let mut seen_epoch = 0u64;
    loop {
        let wait_start = Instant::now();
        let job = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    if let Some(job) = &st.job {
                        seen_epoch = st.epoch;
                        break Arc::clone(job);
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let waited_us = wait_start.elapsed().as_micros() as u64;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_executor(&shared, &job, exec_idx, &mut ctx)
        }));
        match outcome {
            Ok(local) => {
                let mut stats = shared
                    .worker_stats
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                stats[exec_idx - 1].absorb_batch(&local, waited_us);
            }
            Err(_) => {
                // The executor context may be mid-run garbage; rebuild it.
                ctx = ExecutorCtx::new(&shared.decode_cache);
                shared.lock_state().panicked = true;
            }
        }
        // Decrement only after every side effect (slots, absorbed shard,
        // flushed metrics and journal) has landed: the dispatching
        // thread's Acquire load of `remaining` then orders them all
        // before result collection.
        if job.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _st = shared.lock_state();
            shared.work_done.notify_all();
        }
    }
}

/// Executes one batch's worth of claims as executor `exec_idx`. Shared by
/// pool workers and the dispatching thread (executor 0). On return, all
/// of this executor's side effects are globally visible: fresh decode
/// segments absorbed and re-published, deferred metrics flushed, journal
/// events in the global sink.
fn run_executor(
    shared: &PoolShared,
    job: &BatchJob,
    exec_idx: usize,
    ctx: &mut ExecutorCtx,
) -> BatchLocal {
    let mut local = BatchLocal::default();
    {
        // One defer guard and one worker span per batch, not per run:
        // metric recording buffers locally and the span registry is
        // touched once.
        let _defer = gist_obs::defer_metrics();
        let _span = gist_obs::span_under(&job.parent, "fleet.worker");
        ctx.shard.refresh(&shared.decode_cache);
        while let Some(i) = job.claim(exec_idx, &mut local) {
            let (id, seed) = job.descriptors[i];
            let run = execute_one(
                &shared.program,
                &shared.compiled,
                shared.make_config,
                shared.num_cores,
                ctx,
                &job.patch,
                id,
                seed,
            );
            // SAFETY: `claim` hands out each index exactly once.
            unsafe { job.slots.put(i, run) };
            local.runs += 1;
        }
    }
    shared.decode_cache.absorb(&mut ctx.shard);
    local.shard_hits = ctx.shard.hits();
    local.shard_misses = ctx.shard.misses();
    ctx.shard.reset_stats();
    // Batch boundary: persistent workers outlive many batches, so their
    // thread-exit flush comes far too late — push buffered events into
    // the journal ring here so the dispatching thread's drain (and any
    // `drain_since` cursor tailing the diagnosis) sees this batch.
    gist_obs::journal::flush_local();
    local
}

/// Executes one run. All expensive state comes from the executor context:
/// recycled scratch, private buffer pool, lock-free decode shard.
#[allow(clippy::too_many_arguments)]
fn execute_one(
    program: &Program,
    compiled: &Arc<CompiledProgram>,
    make_config: fn(u64) -> VmConfig,
    num_cores: u32,
    ctx: &mut ExecutorCtx,
    patch: &InstrumentationPatch,
    run_id: u64,
    seed: u64,
) -> ClientRunData {
    gist_obs::event!(RunStarted { run: run_id, seed });
    let mut cfg = make_config(seed);
    cfg.num_cores = num_cores;
    let mut tracker = TrackerRuntime::new(program, patch.clone(), num_cores)
        .with_decode_shard(&mut ctx.shard)
        .with_buffer_pool(Arc::clone(&ctx.buffer_pool));
    let scratch = std::mem::take(&mut ctx.scratch);
    let mut vm = Vm::with_scratch(program, Arc::clone(compiled), cfg, scratch);
    let result = vm.run(&mut [&mut tracker]);
    let data = ClientRunData {
        run_id,
        outcome: match result.outcome {
            RunOutcome::Failed(r) => Some(r),
            RunOutcome::Finished => None,
        },
        trace: tracker.finish(),
        retired: result.steps,
    };
    gist_obs::event!(RunFinished {
        run: run_id,
        failing: data.outcome.is_some(),
        retired: result.steps,
        hits: data.trace.hits.len() as u64,
    });
    ctx.scratch = vm.into_scratch();
    data
}

/// A fleet of simulated endpoints executing one program under a seeded
/// workload. Implements [`Fleet`] for the Gist server.
pub struct SimulatedFleet<'p> {
    program: &'p Program,
    make_config: fn(u64) -> VmConfig,
    config: FleetConfig,
    compiled: Arc<CompiledProgram>,
    /// Memoized PT decode segments; shards publish into it at batch end.
    decode_cache: Arc<DecodeCache>,
    /// Executor-0 state (the dispatching thread), used by both the
    /// sequential path and pooled batches.
    main_ctx: ExecutorCtx,
    main_stats: WorkerStats,
    /// Lazily created on the first batched refill.
    pool: Option<FleetPool>,
    /// Next run index (also drives endpoint choice and seeds).
    next_run: u64,
    /// Prefetched runs for the currently shipped patch.
    buffer: VecDeque<ClientRunData>,
    /// The patch the buffer was produced under.
    buffered_patch: Option<InstrumentationPatch>,
    /// Server's advisory prefetch ceiling (see
    /// [`Fleet::hint_runs_remaining`]).
    hint_remaining: Option<u64>,
    /// Total runs executed.
    pub runs: u64,
    /// Runs that failed (any failure).
    pub failing_runs: u64,
}

impl<'p> SimulatedFleet<'p> {
    /// Creates a fleet executing `program` with the given seeded workload.
    /// The program is compiled here, once, before any run dispatches.
    /// Worker threads spawn lazily on the first batched refill.
    pub fn new(
        program: &'p Program,
        make_config: fn(u64) -> VmConfig,
        config: FleetConfig,
    ) -> Self {
        let compiled = CompiledProgram::shared(program);
        let decode_cache = Arc::new(DecodeCache::new());
        let main_ctx = ExecutorCtx::new(&decode_cache);
        SimulatedFleet {
            program,
            make_config,
            config,
            compiled,
            decode_cache,
            main_ctx,
            main_stats: WorkerStats::default(),
            pool: None,
            next_run: 0,
            buffer: VecDeque::new(),
            buffered_patch: None,
            hint_remaining: None,
            runs: 0,
            failing_runs: 0,
        }
    }

    /// Creates a fleet for a bugbase bug.
    pub fn for_bug(bug: &'p gist_bugbase::BugSpec, config: FleetConfig) -> Self {
        Self::new(&bug.program, bug.make_config, config)
    }

    /// The workload seed of run `n`: endpoints interleave round-robin and
    /// each endpoint has its own seed stream, so adding endpoints changes
    /// *which* machine sees a failure but not reproducibility.
    fn seed_of(&self, n: u64) -> u64 {
        let endpoint = n % u64::from(self.config.endpoints.max(1));
        let local = n / u64::from(self.config.endpoints.max(1));
        endpoint.wrapping_mul(1_000_003).wrapping_add(local)
    }

    /// Cumulative contention statistics per executor (index 0 = the
    /// dispatching thread). Scheduling-dependent — reported next to
    /// throughput numbers, never in the deterministic metrics section.
    pub fn contention_stats(&self) -> FleetStats {
        let mut workers = vec![self.main_stats.clone()];
        if let Some(pool) = &self.pool {
            workers.extend(
                pool.shared
                    .worker_stats
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        FleetStats { workers }
    }

    /// Worker threads backing this fleet's pool (0 before the first
    /// batched refill or on a sequential fleet).
    pub fn pool_workers(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.handles.len())
    }

    /// Spawns the persistent pool on first use.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        let threads = self
            .config
            .workers
            .unwrap_or_else(machine_workers)
            .min(self.config.batch.saturating_sub(1));
        let shared = Arc::new(PoolShared {
            program: Arc::new(self.program.clone()),
            compiled: Arc::clone(&self.compiled),
            decode_cache: Arc::clone(&self.decode_cache),
            make_config: self.make_config,
            num_cores: self.config.num_cores,
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                shutdown: false,
                panicked: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            worker_stats: Mutex::new(vec![WorkerStats::default(); threads]),
        });
        let handles = (1..=threads)
            .map(|exec_idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fleet-worker-{exec_idx}"))
                    .spawn(move || worker_loop(shared, exec_idx))
                    .expect("spawn fleet worker")
            })
            .collect();
        self.pool = Some(FleetPool { shared, handles });
    }

    /// Executes `descriptors` on the pool (dispatching thread included)
    /// and appends the results to the buffer in run-id order.
    fn run_batch(&mut self, patch: &InstrumentationPatch, descriptors: Vec<(u64, u64)>) {
        self.ensure_pool();
        let pool = self.pool.as_ref().expect("pool just ensured");
        let shared = Arc::clone(&pool.shared);
        let batch = descriptors.len();
        let executors = pool.handles.len() + 1;
        // Split the descriptor range into one contiguous deque per
        // executor, as even as possible (executor 0 = this thread).
        let deques = (0..executors)
            .map(|k| {
                Deque::new(
                    (k * batch / executors) as u32,
                    ((k + 1) * batch / executors) as u32,
                )
            })
            .collect();
        let job = Arc::new(BatchJob {
            descriptors,
            patch: patch.clone(),
            parent: gist_obs::current_span_handle(),
            deques,
            slots: Slots::new(batch),
            remaining: AtomicUsize::new(pool.handles.len()),
        });
        {
            let mut st = shared.lock_state();
            st.epoch += 1;
            st.job = Some(Arc::clone(&job));
            shared.work_ready.notify_all();
        }
        let local = run_executor(&shared, &job, 0, &mut self.main_ctx);
        self.main_stats.absorb_batch(&local, 0);
        {
            let mut st = shared.lock_state();
            while job.remaining.load(Ordering::Acquire) != 0 {
                st = shared.work_done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.job = None;
            if st.panicked {
                st.panicked = false;
                panic!("fleet worker panicked");
            }
        }
        for i in 0..batch {
            // SAFETY: batch complete (remaining == 0 acquired above);
            // every claimed slot was filled and no executor touches the
            // job anymore.
            let run = unsafe { job.slots.take(i) }.expect("every batch slot filled");
            self.buffer.push_back(run);
        }
    }

    /// Fills the buffer with a batch of runs for `patch`, in parallel when
    /// `config.batch > 1`.
    fn refill(&mut self, patch: &InstrumentationPatch) {
        // The server's remaining-runs hint caps the prefetch so a batch
        // never executes runs that would only be discarded at the next
        // patch change.
        let batch = self
            .hint_remaining
            .map_or(self.config.batch, |h| {
                self.config.batch.min(h.max(1) as usize)
            })
            .max(1);
        // Batch shape depends on the execution configuration, not on the
        // logical work, so it is a histogram — counters must stay identical
        // across batch sizes (the determinism contract).
        gist_obs::histogram!("fleet.batch_occupancy").record(batch as u64);
        let descriptors: Vec<(u64, u64)> = (0..batch as u64)
            .map(|i| {
                let n = self.next_run + i;
                (n, self.seed_of(n))
            })
            .collect();
        self.next_run += batch as u64;
        if batch == 1 {
            // Sequential path: execute inline on executor 0. Worker spans
            // parent under whatever span dispatched the fleet (typically
            // `server.collect`).
            let parent = gist_obs::current_span_handle();
            let _span = gist_obs::span_under(&parent, "fleet.worker");
            let (id, seed) = descriptors[0];
            let run = execute_one(
                self.program,
                &self.compiled,
                self.make_config,
                self.config.num_cores,
                &mut self.main_ctx,
                patch,
                id,
                seed,
            );
            self.buffer.push_back(run);
            self.main_stats.runs += 1;
            self.main_stats.shard_hits += self.main_ctx.shard.hits();
            self.main_stats.shard_misses += self.main_ctx.shard.misses();
            self.main_ctx.shard.reset_stats();
        } else {
            self.run_batch(patch, descriptors);
        }
        self.buffered_patch = Some(patch.clone());
    }
}

impl Fleet for SimulatedFleet<'_> {
    fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
        if self.buffered_patch.as_ref() != Some(patch) {
            // Patch changed (new AsT iteration / watch group): discard any
            // prefetched runs; those executions simply never report back.
            // Discard counts also depend on batch shape -> histogram.
            gist_obs::histogram!("fleet.runs_discarded").record(self.buffer.len() as u64);
            self.buffer.clear();
            self.buffered_patch = None;
        }
        if self.buffer.is_empty() {
            self.refill(patch);
        }
        let run = self.buffer.pop_front().expect("refill produced runs");
        self.runs += 1;
        gist_obs::counter!("fleet.runs_dispatched").inc();
        if run.outcome.is_some() {
            self.failing_runs += 1;
            gist_obs::counter!("fleet.failing_runs").inc();
        }
        run
    }

    fn hint_runs_remaining(&mut self, remaining: u64) {
        self.hint_remaining = Some(remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::bug_by_name;

    /// Forces real pool worker threads regardless of machine size, so the
    /// stealing/slot machinery is exercised even on one-core CI runners.
    fn forced(endpoints: u32, batch: usize, workers: usize) -> FleetConfig {
        FleetConfig {
            endpoints,
            num_cores: 4,
            batch,
            workers: Some(workers),
        }
    }

    #[test]
    fn sequential_and_parallel_fleets_agree() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let patch = InstrumentationPatch::default();
        let runs_with = |batch: usize, workers: usize| {
            let mut fleet = SimulatedFleet::for_bug(&bug, forced(8, batch, workers));
            (0..12)
                .map(|_| {
                    let r = Fleet::next_run(&mut fleet, &patch);
                    (r.run_id, r.outcome.is_some(), r.retired)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            runs_with(1, 0),
            runs_with(4, 3),
            "batching must not change runs"
        );
    }

    /// The bug's shipped patch: what the server would plan for the first
    /// watch group over an 8-statement slice prefix of the failure.
    fn planned_patch(bug: &gist_bugbase::BugSpec) -> InstrumentationPatch {
        let (_, report) = bug.find_failure(2_000).expect("bug manifests");
        let slicer = gist_slicing::StaticSlicer::new(&bug.program);
        let slice = slicer.compute(report.failing_stmt);
        let planner = gist_tracking::Planner::new(&bug.program, slicer.ticfg());
        planner.plan(slice.prefix(8), 0)
    }

    /// Differential: for EVERY bugbase bug under its shipped patch, the
    /// batched fleet is run-for-run indistinguishable from the sequential
    /// one — same outcomes, same retired counts, and the same watchpoint
    /// hit sequences. 16 runs is a multiple of the batch size, so the
    /// batch arm executes exactly as many runs as the sequential arm.
    #[test]
    fn batched_fleets_agree_on_every_bug_under_shipped_patch() {
        for bug in gist_bugbase::all_bugs() {
            let patch = planned_patch(&bug);
            let runs_with = |batch: usize, workers: usize| {
                let mut fleet = SimulatedFleet::for_bug(&bug, forced(8, batch, workers));
                (0..16)
                    .map(|_| {
                        let r = Fleet::next_run(&mut fleet, &patch);
                        (
                            r.run_id,
                            r.outcome.map(|o| format!("{o:?}")),
                            r.retired,
                            r.trace.hits,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                runs_with(1, 0),
                runs_with(8, 3),
                "{}: batch=8 must match sequential runs exactly",
                bug.name
            );
        }
    }

    /// Satellite regression test: results come out of the pooled path in
    /// run-id order by construction (pre-sized slots, no sort), across
    /// several batches and a worker count that guarantees stealing
    /// pressure on the shared deques.
    #[test]
    fn pooled_batches_preserve_run_id_order() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let patch = InstrumentationPatch::default();
        let mut fleet = SimulatedFleet::for_bug(&bug, forced(8, 8, 4));
        let ids: Vec<u64> = (0..32)
            .map(|_| Fleet::next_run(&mut fleet, &patch).run_id)
            .collect();
        assert_eq!(
            ids,
            (0..32).collect::<Vec<u64>>(),
            "slot collection must be in run-id order"
        );
        assert_eq!(fleet.pool_workers(), 4, "forced workers spawn real threads");
        let stats = fleet.contention_stats();
        assert_eq!(stats.workers.len(), 5, "executor 0 + 4 pool workers");
        let total: u64 = stats.workers.iter().map(|w| w.runs).sum();
        assert_eq!(total, 32, "every run attributed to exactly one executor");
    }

    /// The server's remaining-runs hint caps prefetch: with 3 runs left,
    /// a batch-8 fleet must not execute 8 runs.
    #[test]
    fn hint_caps_prefetch() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let patch = InstrumentationPatch::default();
        let mut fleet = SimulatedFleet::for_bug(&bug, forced(8, 8, 2));
        Fleet::hint_runs_remaining(&mut fleet, 3);
        let _ = Fleet::next_run(&mut fleet, &patch);
        assert_eq!(fleet.next_run, 3, "prefetch capped at the hint");
        // Without a fresh hint the cap persists until the server updates it.
        let _ = Fleet::next_run(&mut fleet, &patch);
        let _ = Fleet::next_run(&mut fleet, &patch);
        assert_eq!(fleet.next_run, 3, "buffered runs served without refill");
    }

    #[test]
    fn failure_counter_tracks_outcomes() {
        let bug = bug_by_name("curl-965").unwrap();
        let patch = InstrumentationPatch::default();
        let mut fleet = SimulatedFleet::for_bug(&bug, FleetConfig::default());
        for _ in 0..9 {
            Fleet::next_run(&mut fleet, &patch);
        }
        assert_eq!(fleet.runs, 9);
        // Curl fails on every third seed (seeds 0,3,6 of endpoint streams
        // spread across endpoints, so at least one failure in 9 runs).
        assert!(fleet.failing_runs > 0);
    }

    #[test]
    fn patch_change_discards_prefetched_runs() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let mut fleet = SimulatedFleet::for_bug(&bug, forced(4, 6, 2));
        let p1 = InstrumentationPatch::default();
        let p2 = InstrumentationPatch {
            pt_on_at_start: true,
            ..InstrumentationPatch::default()
        };
        let _ = Fleet::next_run(&mut fleet, &p1);
        // Buffer holds 5 prefetched runs for p1; switching patches drops them.
        let r = Fleet::next_run(&mut fleet, &p2);
        assert!(
            r.run_id >= 6,
            "prefetched p1 runs discarded, got {}",
            r.run_id
        );
    }

    #[test]
    fn distinct_endpoints_have_distinct_seed_streams() {
        let bug = bug_by_name("pbzip2-1").unwrap();
        let fleet = SimulatedFleet::for_bug(
            &bug,
            FleetConfig {
                endpoints: 16,
                ..FleetConfig::default()
            },
        );
        let s0 = fleet.seed_of(0);
        let s1 = fleet.seed_of(1);
        let s16 = fleet.seed_of(16);
        assert_ne!(s0, s1);
        assert_eq!(s16, s0 + 1, "endpoint 0's second run follows its stream");
    }
}
