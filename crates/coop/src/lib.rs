//! The cooperative setting of the paper (§3, §5): "multiple instances of
//! the same software execute in a data center or in multiple users'
//! machines. Gist's server side performs offline analysis and distributes
//! instrumentation to its client side."
//!
//! The paper's own evaluation *simulates* this fleet (1,136 simulated user
//! endpoints) because Broadwell parts with Intel PT were scarce in 2015;
//! we do the same:
//!
//! * [`fleet::SimulatedFleet`] — N endpoints, each with its own workload
//!   seed stream; runs execute on the MiniC VM under the shipped
//!   [`gist_tracking::InstrumentationPatch`]. Batches of runs can execute
//!   on real OS threads (crossbeam scoped threads + parking_lot locks) —
//!   per-run determinism is preserved because seeds are assigned before
//!   dispatch.
//! * [`evaluate`] — the per-bug evaluation harness: seeds a diagnosis with
//!   the first failure report, drives [`gist_core::GistServer`] against
//!   the fleet until the sketch contains the bug's root cause, and scores
//!   the result against the hand-built ideal sketch (§5.2). Every row of
//!   Table 1 and every bar of Figs. 9/10/12 comes from this harness.

pub mod evaluate;
pub mod fleet;
pub mod synth_eval;

pub use evaluate::{diagnose_bug, BugEvaluation, EvalConfig};
pub use fleet::{FleetConfig, FleetStats, SimulatedFleet, WorkerStats};
pub use synth_eval::{diagnose_synth, SynthEvaluation};
