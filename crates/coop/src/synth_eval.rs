//! Dynamic evaluation of synthetic bugs: the full AsT loop against an
//! injected, machine-checkable ground truth.
//!
//! [`diagnose_synth`] is the synthetic twin of [`crate::diagnose_bug`]:
//! find a failing run that matches the injected failure, hand the report
//! to the Gist server over a simulated fleet, and stop AsT as soon as the
//! sketch covers the injected root-cause lines (a
//! [`gist_core::CoverageTarget`] built from the ground truth). The result
//! scores sketch accuracy against the generator's ideal sketch, which is
//! what `repro bench --synthetic` aggregates into a recovery rate.

use gist_bugbase::synth::{synth_config, SynthBug};
use gist_core::{diagnose_until, CoverageTarget, GistConfig, GistServer};
use gist_sketch::accuracy::{measure, Accuracy};
use gist_sketch::FailureSketch;

use crate::evaluate::EvalConfig;
use crate::fleet::SimulatedFleet;

/// The outcome of diagnosing one synthetic bug.
#[derive(Clone, Debug)]
pub struct SynthEvaluation {
    /// `synth-<seed:08x>-<pattern>`.
    pub bug: String,
    /// The generation seed.
    pub seed: u64,
    /// The injected pattern's family label.
    pub family: String,
    /// The injected pattern's slug.
    pub pattern: String,
    /// Whether a matching failing run manifested within the seed budget.
    pub manifested: bool,
    /// Whether the converged sketch covers every root-cause line
    /// (the recovery criterion).
    pub recovered: bool,
    /// Relevance accuracy A_R (percent) vs the injected ideal sketch.
    pub relevance: f64,
    /// Ordering accuracy A_O (percent).
    pub ordering: f64,
    /// Overall accuracy A (percent).
    pub overall: f64,
    /// AsT iterations consumed.
    pub iterations: usize,
    /// Total simulated production runs consumed.
    pub total_runs: usize,
    /// Final sketch statement count.
    pub sketch_instrs: usize,
    /// The rendered final sketch (kept for failure forensics).
    pub sketch: Option<FailureSketch>,
}

/// Seed budget when searching for a manifesting run. Every template's
/// per-seed failure probability is well above 5%, so 400 seeds push the
/// miss probability below 1e-8 per bug.
pub const MANIFEST_SEEDS: u64 = 400;

/// Runs the full Gist pipeline on one synthetic bug and scores the
/// result against its ground truth.
pub fn diagnose_synth(bug: &SynthBug, cfg: &EvalConfig) -> SynthEvaluation {
    let mut eval = SynthEvaluation {
        bug: bug.name.clone(),
        seed: bug.seed,
        family: bug.truth.pattern.family().label().to_owned(),
        pattern: bug.truth.pattern.slug().to_owned(),
        manifested: false,
        recovered: false,
        relevance: 0.0,
        ordering: 0.0,
        overall: 0.0,
        iterations: 0,
        total_runs: 0,
        sketch_instrs: 0,
        sketch: None,
    };
    let Some((_, report)) = bug.find_failure(MANIFEST_SEEDS) else {
        return eval;
    };
    eval.manifested = true;

    let server = GistServer::new(
        &bug.program,
        GistConfig {
            sigma0: cfg.sigma0,
            growth: cfg.growth,
            beta: 0.5,
            failing_runs_per_iteration: cfg.failing_per_iteration,
            max_runs_per_iteration: cfg.max_runs_per_iteration,
            max_iterations: cfg.max_iterations,
            enable_control_flow: cfg.enable_control_flow,
            enable_data_flow: cfg.enable_data_flow,
            enable_race_ranking: cfg.enable_race_ranking,
            enable_alias_slicing: cfg.enable_alias_slicing,
            enable_svfg_slicing: cfg.enable_svfg_slicing,
            enable_mhp: cfg.enable_mhp,
            enable_dead_store_pruning: cfg.enable_dead_store_pruning,
            title: format!("Failure Sketch for {}", bug.name),
            bug_class: eval.family.clone(),
        },
    );
    let mut fleet = SimulatedFleet::new(&bug.program, synth_config, cfg.fleet.clone());
    let target = if cfg.stop_at_root_cause {
        CoverageTarget::from_groups(
            bug.truth
                .root_cause_lines
                .iter()
                .map(|&l| bug.stmts_at(l))
                .collect(),
        )
    } else {
        // An unachievable target: run AsT to saturation (ablations).
        CoverageTarget::from_groups(vec![Vec::new()])
    };
    let ideal_set = bug.ideal_stmts();
    let result = diagnose_until(&server, &report, &mut fleet, Some(&ideal_set), &target);

    let acc: Accuracy = measure(&result.sketch, &bug.ideal_sketch());
    let stmts: std::collections::BTreeSet<_> = result.sketch.stmts().into_iter().collect();
    eval.recovered = bug.root_cause_covered(&stmts);
    eval.relevance = acc.relevance;
    eval.ordering = acc.ordering;
    eval.overall = acc.overall();
    eval.iterations = result.iterations;
    eval.total_runs = result.total_runs;
    eval.sketch_instrs = stmts.len();
    eval.sketch = Some(result.sketch);
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use gist_bugbase::synth::{generate_with_pattern, PatternKind};

    #[test]
    fn uaf_injection_is_recovered_end_to_end() {
        let bug = generate_with_pattern(3, PatternKind::UseAfterFree);
        let eval = diagnose_synth(&bug, &EvalConfig::default());
        assert!(eval.manifested, "{}: no failing run", bug.name);
        assert!(
            eval.recovered,
            "{}: sketch missed the root cause:\n{}",
            bug.name,
            eval.sketch.map(|s| s.render()).unwrap_or_default()
        );
    }
}
