//! Simulates the paper's cooperative setting: a fleet of endpoints
//! running Memcached, one rare concurrency bug, and Gist diagnosing it
//! from failure recurrences — while tracking the client-side cost.
//!
//! ```text
//! cargo run -p gist-bench --example datacenter_fleet
//! ```

use gist_baselines::CostModel;
use gist_bugbase::bug_by_name;
use gist_coop::{diagnose_bug, EvalConfig, FleetConfig};

fn main() {
    let bug = bug_by_name("memcached-127").expect("bugbase has memcached-127");
    println!(
        "deploying {} v{} to a simulated fleet (bug {}: item refcount race)\n",
        bug.software, bug.version, bug.bug_id
    );

    let cfg = EvalConfig {
        fleet: FleetConfig {
            endpoints: 256,
            num_cores: 4,
            batch: 8, // collect batches of runs on the persistent pool
            workers: None,
        },
        failing_per_iteration: 5,
        ..EvalConfig::default()
    };
    let eval = diagnose_bug(&bug, &cfg);

    println!("{}", eval.sketch.render());
    println!("--- fleet & cost report ---");
    println!(
        "production runs consumed: {} ({} failure recurrences)",
        eval.total_runs, eval.recurrences
    );
    println!(
        "PT trace bytes: {}   driver transitions: {}   watch traps: {}   ptrace ops: {}",
        eval.cost.pt_bytes, eval.cost.pt_transitions, eval.cost.watch_traps, eval.cost.ptrace_ops
    );
    let model = CostModel::default();
    println!(
        "modeled client overhead: {:.2}% (paper: 3.74% average at σ=2)",
        model.gist_overhead_pct(&eval.cost)
    );
    println!(
        "instrumentation shipped: {} points, {} patch bytes",
        eval.cost.instrumentation_points, eval.cost.patch_bytes
    );
    println!(
        "sketch accuracy vs hand-built ideal: {:.1}% (root cause {})",
        eval.overall,
        if eval.found_root_cause {
            "found"
        } else {
            "missing"
        }
    );
}
