//! Reproduces the paper's Fig. 1: the failure sketch for pbzip2 bug #1.
//!
//! ```text
//! cargo run -p gist-bench --example pbzip2_sketch
//! ```

use gist_bugbase::bug_by_name;
use gist_coop::{diagnose_bug, EvalConfig};

fn main() {
    let bug = bug_by_name("pbzip2-1").expect("bugbase has pbzip2-1");
    println!(
        "{} ({} {}, bug {})\n",
        bug.display, bug.software, bug.version, bug.bug_id
    );
    let eval = diagnose_bug(&bug, &EvalConfig::default());
    println!("{}", eval.sketch.render());
    println!(
        "accuracy: relevance {:.1}%, ordering {:.1}%, overall {:.1}%",
        eval.relevance, eval.ordering, eval.overall
    );
    println!(
        "latency: {} failure recurrences over {} production runs ({} AsT iterations)",
        eval.recurrences, eval.total_runs, eval.iterations
    );
    println!(
        "paper reported: slice {}({}) ideal {}({}) sketch {}({}) in {} recurrences",
        bug.paper.slice_src,
        bug.paper.slice_instrs,
        bug.paper.ideal_src,
        bug.paper.ideal_instrs,
        bug.paper.gist_src,
        bug.paper.gist_instrs,
        bug.paper.recurrences
    );
}
