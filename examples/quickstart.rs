//! Quickstart: diagnose a tiny racy program end-to-end with Gist.
//!
//! ```text
//! cargo run -p gist-bench --example quickstart
//! ```
//!
//! Builds a small multithreaded MiniC program with an atomicity violation,
//! finds a failing production run, lets Gist's server iterate Adaptive
//! Slice Tracking against a simulated fleet, and prints the resulting
//! failure sketch.

use gist_core::{ClientRunData, Fleet, GistConfig, GistServer};
use gist_ir::parser::parse_program;
use gist_tracking::{InstrumentationPatch, TrackerRuntime};
use gist_vm::{RunOutcome, SchedulerKind, Vm, VmConfig};

/// A counter with a read-modify-write race: two workers increment without
/// holding the lock; an assertion in main catches lost updates.
const PROGRAM: &str = r#"
global counter = 0

fn worker(arg) {
entry:
  v = load $counter        @ demo.c:10
  v2 = add v, 1            @ demo.c:11
  store $counter, v2       @ demo.c:12
  ret                      @ demo.c:13
}

fn main() {
entry:
  t1 = spawn worker(0)     @ demo.c:20
  t2 = spawn worker(0)     @ demo.c:21
  join t1                  @ demo.c:22
  join t2                  @ demo.c:23
  v = load $counter        @ demo.c:24
  ok = cmp eq v, 2         @ demo.c:25
  assert ok, "lost update" @ demo.c:25
  ret                      @ demo.c:26
}
"#;

struct DemoFleet<'p> {
    program: &'p gist_ir::Program,
    seed: u64,
}

impl Fleet for DemoFleet<'_> {
    fn next_run(&mut self, patch: &InstrumentationPatch) -> ClientRunData {
        self.seed += 1;
        let mut tracker = TrackerRuntime::new(self.program, patch.clone(), 4);
        let cfg = VmConfig {
            scheduler: SchedulerKind::Random {
                seed: self.seed,
                preempt: 0.6,
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(self.program, cfg);
        let result = vm.run(&mut [&mut tracker]);
        ClientRunData {
            run_id: self.seed,
            outcome: match result.outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            },
            trace: tracker.finish(),
            retired: result.steps,
        }
    }
}

fn main() {
    let program = parse_program("demo", PROGRAM).expect("demo program parses");

    // Step 0: static analysis. Before any production run, the lockset race
    // detector already points at the unguarded counter accesses — the same
    // ranking the server uses to seed tracking and order watchpoints.
    let races = gist_analysis::analyze(&program);
    println!("static race candidates (before any run):");
    print!("{}", races.render_table(&program));
    println!();

    // Step 1 (paper Fig. 2 ①): a failure report arrives from production.
    let report = (0..500)
        .find_map(|seed| {
            let cfg = VmConfig {
                scheduler: SchedulerKind::Random { seed, preempt: 0.6 },
                ..VmConfig::default()
            };
            match Vm::new(&program, cfg).run(&mut []).outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            }
        })
        .expect("the race manifests within 500 runs");
    println!("failure report: {}\n", report.summary(&program));

    // Steps 2–5: slice, adaptively track production runs, refine, rank
    // failure predictors, build the sketch.
    let server = GistServer::new(
        &program,
        GistConfig {
            failing_runs_per_iteration: 8,
            title: "Failure Sketch for demo lost-update race".into(),
            bug_class: "Concurrency bug".into(),
            ..GistConfig::default()
        },
    );
    let mut fleet = DemoFleet {
        program: &program,
        seed: 1000,
    };
    let result = server.diagnose(&report, &mut fleet, None, &mut |sketch| {
        // The developer stops once an order predictor with a perfect
        // F-measure shows up.
        sketch
            .predictors
            .iter()
            .any(|p| p.predictor.category() == "order" && p.f_measure(0.5) > 0.99)
    });

    println!("{}", result.sketch.render());
    println!(
        "diagnosis: {} AsT iterations, {} failure recurrences, {} total runs, final σ = {}",
        result.iterations, result.recurrences, result.total_runs, result.final_sigma
    );
}
