//! Bring-your-own-bug: write a MiniC program in the textual format, give
//! Gist its failure, and get a sketch — the workflow a downstream user of
//! this library follows for their own code.
//!
//! The program here is a sequential configuration-parsing bug: a missing
//! `=` in the config line sends the parser down a path that leaves the
//! port unset (0), and the server later divides by it.
//!
//! ```text
//! cargo run -p gist-bench --example custom_bug
//! ```

use gist_core::{ClientRunData, GistConfig, GistServer};
use gist_ir::parser::parse_program;
use gist_tracking::{InstrumentationPatch, TrackerRuntime};
use gist_vm::{Input, RunOutcome, Vm, VmConfig};

const PROGRAM: &str = r#"
global default_port = 8080

fn parse_config(line) {
entry:
  port = alloc 1              @ config.c:10
  ch = load line              @ config.c:12
  iseq = cmp eq ch, 61        @ config.c:13
  condbr iseq, haskey, bare   @ config.c:13
haskey:
  p1 = add line, 1            @ config.c:15
  v = load p1                 @ config.c:15
  store port, v               @ config.c:16
  br done                    @ config.c:17
bare:
  store port, 0               @ config.c:19
  br done                    @ config.c:20
done:
  ret port                    @ config.c:22
}

fn serve(port_cell) {
entry:
  p = load port_cell          @ server.c:30
  shard = div 1000, p         @ server.c:31
  print shard                 @ server.c:32
  ret                         @ server.c:33
}

fn main() {
entry:
  line = input 0              @ main.c:5
  pc = call parse_config(line) @ main.c:7
  call serve(pc)              @ main.c:9
  ret                         @ main.c:11
}
"#;

fn config_for(seed: u64) -> VmConfig {
    // Every fourth "deployment" has a config line missing the '='.
    let line: Vec<i64> = if seed.is_multiple_of(4) {
        vec![56, 48] // "80" — no '=' prefix
    } else {
        vec![61, 9000] // "=9000"
    };
    VmConfig {
        inputs: vec![Input::Str(line)],
        ..VmConfig::default()
    }
}

fn main() {
    let program = parse_program("myserver", PROGRAM).expect("program parses");

    // Static analysis first: the verifier vouches for the hand-written IR,
    // and the race table is empty — this bug is sequential, so diagnosis
    // will rest on branch/value predictors instead.
    let verification = gist_analysis::verify(&program);
    assert!(
        !gist_analysis::has_errors(&verification),
        "{}",
        gist_analysis::render_report(Some(&program), &verification)
    );
    let races = gist_analysis::analyze(&program);
    println!("static race candidates:");
    print!("{}", races.render_table(&program));
    println!();

    let report = (0..16)
        .find_map(
            |seed| match Vm::new(&program, config_for(seed)).run(&mut []).outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            },
        )
        .expect("bad config crashes the server");
    println!("production failure: {}\n", report.summary(&program));

    let server = GistServer::new(
        &program,
        GistConfig {
            failing_runs_per_iteration: 4,
            title: "Failure Sketch for myserver config bug".into(),
            bug_class: "Sequential bug".into(),
            ..GistConfig::default()
        },
    );
    let mut seed = 100u64;
    let mut fleet = |patch: &InstrumentationPatch| {
        seed += 1;
        let mut tracker = TrackerRuntime::new(&program, patch.clone(), 4);
        let mut vm = Vm::new(&program, config_for(seed));
        let result = vm.run(&mut [&mut tracker]);
        ClientRunData {
            run_id: seed,
            outcome: match result.outcome {
                RunOutcome::Failed(r) => Some(r),
                RunOutcome::Finished => None,
            },
            trace: tracker.finish(),
            retired: result.steps,
        }
    };
    let result = server.diagnose(&report, &mut fleet, None, &mut |sketch| {
        sketch.predictors.iter().any(|p| p.f_measure(0.5) > 0.99)
    });
    println!("{}", result.sketch.render());
    println!(
        "({} iterations, {} recurrences, {} runs)",
        result.iterations, result.recurrences, result.total_runs
    );
}
