//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] traits with
//! exactly the methods the PT packet encoder/decoder uses. Backed by plain
//! `Vec<u8>` — no refcounted slabs, which is fine at simulator scale.

use std::ops::Deref;

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_le_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }
}

/// Write-side interface for growing a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)] // is_empty provided below
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the unread bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.pos += cnt;
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)] // is_empty provided below
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes and returns all accumulated bytes, leaving `self` empty.
    pub fn split(&mut self) -> BytesMut {
        BytesMut {
            data: std::mem::take(&mut self.data),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Consumes the buffer, returning its backing `Vec` without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }

    /// Drops all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl From<Vec<u8>> for BytesMut {
    /// Adopts a `Vec` as the backing storage without copying (pairs with
    /// [`BytesMut::into_vec`] for buffer recycling).
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(0xAB);
        m.put_u16_le(0x1234);
        m.put_u32_le(0xDEAD_BEEF);
        assert_eq!(m.len(), 7);
        let mut b = m.freeze();
        assert_eq!(b[0], 0xAB);
        b.advance(1);
        assert_eq!(b.get_u16_le(), 0x1234);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert!(b.is_empty());
    }

    #[test]
    fn split_takes_all_bytes() {
        let mut m = BytesMut::new();
        m.put_slice(b"abc");
        let taken = m.split();
        assert_eq!(taken.to_vec(), b"abc");
        assert!(m.is_empty());
    }
}
