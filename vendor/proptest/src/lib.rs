//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` parameters, range and
//! `collection::vec` strategies, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig::with_cases`. Sampling is plain deterministic random
//! generation (SplitMix64, fixed seed) — no shrinking, no persisted
//! failure seeds. Each failing case still reports the sampled inputs via
//! the assertion message, which is enough to reproduce: the inputs are
//! pure functions of the case index.

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic generator driving strategy sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with a fixed, documented seed: property tests here are
    /// deterministic across runs by design.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5EED_CAFE_F00D_D00D,
        }
    }

    /// Next raw 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (as in real proptest).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among same-valued strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "empty prop_oneof!");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() as usize) % self.options.len();
        self.options[i].sample(rng)
    }
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$({
            let __boxed: Box<dyn $crate::Strategy<Value = _>> = Box::new($strat);
            __boxed
        }),+])
    };
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                ((self.start as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "empty strategy range");
                let span = (e as i128).wrapping_sub(s as i128) as u128 + 1;
                ((s as i128) + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with element strategy `elem` and a
    /// length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Vector strategy over `elem` with length in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A strategy producing `BTreeSet`s (duplicates shrink the size, as in
    /// real proptest).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Set strategy over `elem` with up to `len` draws.
    pub fn btree_set<S>(elem: S, len: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Just, Map, ProptestConfig, Strategy, TestRng, Union};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]. Re-emits the captured
/// attributes (including `#[test]`) on a zero-argument wrapper.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // Name the case so a panic message pinpoints it.
                    let __run = |__case: u32| $body;
                    __run(__case);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled values respect their ranges.
        #[test]
        fn ranges_hold(a in 3u32..9, b in 0usize..4, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.5..2.0).contains(&f));
        }

        /// Vec strategy respects length bounds and element ranges.
        #[test]
        fn vecs_hold(v in collection::vec(0u32..12, 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 12));
        }
    }

    proptest! {
        /// Default config form (no proptest_config header) expands too.
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }

        /// Just, prop_oneof, prop_map, tuples and btree_set compose.
        #[test]
        fn combinators_hold(
            v in prop_oneof![Just(0u32), (10u32..20).prop_map(|x| x * 2)],
            pair in (0u32..3, 1u32..4),
            set in collection::btree_set(0u32..6, 0..10),
        ) {
            prop_assert!(v == 0 || (20..40).contains(&v));
            prop_assert!(pair.0 < 3 && (1..4).contains(&pair.1));
            prop_assert!(set.len() < 10 && set.iter().all(|&x| x < 6));
        }
    }
}
