/root/repo/vendor/proptest/target/debug/deps/proptest-3bda1f59ca4f3e31.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-3bda1f59ca4f3e31: src/lib.rs

src/lib.rs:
