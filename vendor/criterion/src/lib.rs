//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the benchmarking surface the workspace's `benches/` use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter`, and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple calibrated wall-clock loop (warm-up, then enough iterations to
//! fill a short measurement window) reporting mean ns/iter — no
//! statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Runs one benchmark body repeatedly and measures it.
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Measures `f` by running it in a calibrated loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: time a single run first.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~50ms of measurement, capped to keep long bodies cheap.
        let iters = (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.last_ns = t1.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id consisting of the parameter value only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), b.last_ns);
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last_ns);
    }

    /// Ends the group (upstream finalizes reports here; we need nothing).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { last_ns: 0.0 };
        f(&mut b);
        report(name, b.last_ns);
        self
    }
}

fn report(label: &str, ns: f64) {
    if ns >= 1_000_000.0 {
        println!("{label:<48} {:>12.3} ms/iter", ns / 1_000_000.0);
    } else if ns >= 1_000.0 {
        println!("{label:<48} {:>12.3} µs/iter", ns / 1_000.0);
    } else {
        println!("{label:<48} {ns:>12.1} ns/iter");
    }
}

/// Collects benchmark functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn groups_run_bodies() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| {
            ran = true;
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran);
    }
}
