//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the handful of `rand` entry points it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`. The generator is SplitMix64 —
//! deterministic, seedable, and statistically solid for simulation
//! workloads (schedules, fuzzed programs), which is all we need.

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    /// The workspace's standard generator: SplitMix64.
    ///
    /// Not the upstream ChaCha-based `StdRng`, but API-compatible for the
    /// subset used here and deterministic per seed, which the simulators
    /// rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A type samplable uniformly from the generator's raw output
/// (the `Standard` distribution in upstream rand).
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type from its full uniform range.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
