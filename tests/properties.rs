//! Property-based tests over the core data structures and invariants.

use gist_analysis::race::{lockset_intersect, Lockset};
use gist_analysis::{Loc, MemOrigin};
use gist_ir::builder::ProgramBuilder;
use gist_ir::cfg::Cfg;
use gist_ir::dom::DomTree;
use gist_ir::{BlockId, CmpKind, GlobalId, InstrId};
use gist_predictors::pattern::{AvPattern, RacePattern, Rw};
use gist_predictors::{rank, Predictor, PredictorStats, RunObservations};
use gist_sketch::kendall::kendall_tau_counts;
use gist_slicing::StaticSlicer;
use gist_vm::{AccessKind, SchedulerKind, Vm, VmConfig};
use gist_watch::{WatchCondition, WatchUnit};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Kendall tau distance is symmetric, zero on identity, and bounded by
    /// the pair count.
    #[test]
    fn kendall_tau_properties(a in proptest::collection::vec(0u32..12, 0..10),
                              b in proptest::collection::vec(0u32..12, 0..10)) {
        let (d_ab, p_ab) = kendall_tau_counts(&a, &b);
        let (d_ba, p_ba) = kendall_tau_counts(&b, &a);
        prop_assert_eq!(p_ab, p_ba);
        prop_assert_eq!(d_ab, d_ba, "distance is symmetric");
        prop_assert!(d_ab <= p_ab, "distance bounded by pairs");
        let (d_aa, _) = kendall_tau_counts(&a, &a);
        prop_assert_eq!(d_aa, 0, "identity has distance 0");
    }

    /// Precision, recall and Fβ stay in [0, 1]; Fβ = 0 iff the predictor
    /// never occurs in failing runs.
    #[test]
    fn f_measure_bounds(in_failing in 0usize..20, in_successful in 0usize..20,
                        extra_failing in 0usize..20, extra_successful in 0usize..20,
                        beta in 0.1f64..4.0) {
        let s = PredictorStats {
            predictor: Predictor::Value { stmt: InstrId(0), value: 0 },
            in_failing,
            in_successful,
            total_failing: in_failing + extra_failing,
            total_successful: in_successful + extra_successful,
        };
        let (p, r, f) = (s.precision(), s.recall(), s.f_measure(beta));
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f));
        if in_failing == 0 {
            prop_assert_eq!(f, 0.0);
        }
    }

    /// Ranking is a permutation of the distinct predictors and is sorted
    /// by descending Fβ.
    #[test]
    fn ranking_is_sorted_and_complete(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let runs: Vec<RunObservations> = (0..8).map(|_| RunObservations {
            failing: rng.gen_bool(0.5),
            values: (0..rng.gen_range(0..4))
                .map(|_| (InstrId(rng.gen_range(0..3)), rng.gen_range(0..2)))
                .collect(),
            ..Default::default()
        }).collect();
        let stats = rank(&runs, 0.5);
        for w in stats.windows(2) {
            prop_assert!(w[0].f_measure(0.5) >= w[1].f_measure(0.5) - 1e-12);
        }
        // Distinctness.
        for i in 0..stats.len() {
            for j in i + 1..stats.len() {
                prop_assert!(stats[i].predictor != stats[j].predictor);
            }
        }
    }

    /// The watch unit never traps on untouched addresses, never exceeds
    /// four armed slots, and its hit log is strictly ordered by seq.
    #[test]
    fn watch_unit_invariants(addrs in proptest::collection::vec(0u64..32, 1..60),
                             watched in proptest::collection::vec(0u64..32, 1..8)) {
        let mut unit = WatchUnit::new();
        let mut armed = Vec::new();
        for &w in &watched {
            if unit.set(w, 1, WatchCondition::ReadWrite).is_ok() {
                armed.push(w);
            }
        }
        prop_assert!(armed.len() <= gist_watch::NUM_SLOTS);
        for (i, &a) in addrs.iter().enumerate() {
            unit.check_access(i as u64 + 1, 0, 0, InstrId(0), AccessKind::Read, a, 0);
        }
        for h in unit.hits() {
            prop_assert!(armed.contains(&h.addr), "trap on unwatched address");
        }
        let seqs: Vec<u64> = unit.hits().iter().map(|h| h.seq).collect();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        let expected = addrs.iter().filter(|a| armed.contains(a)).count();
        prop_assert_eq!(unit.hits().len(), expected, "every watched access traps");
    }
}

/// Strategy for one access kind.
fn rw() -> impl Strategy<Value = Rw> {
    prop_oneof![Just(Rw::R), Just(Rw::W)]
}

/// Strategy for one lock location (a few distinct origins and offsets so
/// intersections are non-trivial).
fn lock_loc() -> impl Strategy<Value = Loc> {
    (
        0u32..4,
        0u32..3,
        prop_oneof![Just(None), (0i64..3).prop_map(Some)],
    )
        .prop_map(|(kind, id, offset)| {
            let origin = match kind % 3 {
                0 => MemOrigin::Global(GlobalId(id)),
                1 => MemOrigin::Heap(InstrId(id)),
                _ => MemOrigin::Stack(InstrId(id)),
            };
            Loc { origin, offset }
        })
}

fn lockset() -> impl Strategy<Value = Lockset> {
    proptest::collection::btree_set(lock_loc(), 0..6)
}

proptest! {
    /// `AvPattern::classify` is total over all kind triples and agrees
    /// with Fig. 5: it fires exactly on the four unserializable
    /// interleavings — both adjacent pairs conflict and the triple is not
    /// all-writes — and the pattern's name spells the triple.
    #[test]
    fn av_classify_is_total_and_matches_fig5(a in rw(), b in rw(), c in rw()) {
        let conflicts = |x: Rw, y: Rw| x == Rw::W || y == Rw::W;
        let unserializable =
            conflicts(a, b) && conflicts(b, c) && !(a == Rw::W && b == Rw::W && c == Rw::W);
        let got = AvPattern::classify(a, b, c);
        prop_assert_eq!(got.is_some(), unserializable, "triple {:?}", (a, b, c));
        if let Some(p) = got {
            let letter = |x: Rw| if x == Rw::W { 'W' } else { 'R' };
            let spelled: String = [a, b, c].iter().map(|&x| letter(x)).collect();
            prop_assert_eq!(p.name(), spelled.as_str());
        }
        // The race half of Fig. 5 is consistent with the same conflict
        // notion: a pair classifies iff it conflicts.
        prop_assert_eq!(RacePattern::classify(a, b).is_some(), conflicts(a, b));
    }

    /// Lockset intersection is commutative, associative, idempotent, has
    /// the empty set as absorbing element, and only shrinks its operands.
    #[test]
    fn lockset_intersection_is_a_meet(a in lockset(), b in lockset(), c in lockset()) {
        prop_assert_eq!(lockset_intersect(&a, &b), lockset_intersect(&b, &a));
        prop_assert_eq!(
            lockset_intersect(&lockset_intersect(&a, &b), &c),
            lockset_intersect(&a, &lockset_intersect(&b, &c))
        );
        prop_assert_eq!(lockset_intersect(&a, &a), a.clone());
        prop_assert_eq!(lockset_intersect(&a, &Lockset::new()), Lockset::new());
        let ab = lockset_intersect(&a, &b);
        prop_assert!(ab.is_subset(&a) && ab.is_subset(&b));
    }
}

/// Dominator-tree sanity on randomly shaped (reducible and irreducible)
/// CFGs: the entry dominates every reachable block; immediate dominators
/// are strict dominators; postdominators mirror it for exits.
#[test]
fn dominator_properties_on_random_cfgs() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(2..10usize);
        let mut pb = ProgramBuilder::new("t");
        let mut f = pb.function("main", &[]);
        let blocks: Vec<BlockId> = (1..n).map(|i| f.new_block(&format!("b{i}"))).collect();
        let all: Vec<BlockId> = std::iter::once(BlockId(0)).chain(blocks.clone()).collect();
        // Give every block a terminator: random branch shapes; last block
        // always returns so an exit exists.
        for (i, &b) in all.iter().enumerate() {
            if i > 0 {
                f.switch_to(b);
            }
            if i == all.len() - 1 {
                f.ret(None);
            } else {
                let c = f.const_i64(&format!("c{i}"), 1);
                if rng.gen_bool(0.5) {
                    let t1 = all[rng.gen_range(0..all.len())];
                    let t2 = all[rng.gen_range(0..all.len())];
                    f.condbr(c.into(), t1, t2);
                } else {
                    f.br(all[rng.gen_range(0..all.len())]);
                }
            }
        }
        f.finish();
        let p = pb.finish().unwrap();
        let cfg = Cfg::build(&p.functions[0]);
        let dom = DomTree::dominators(&cfg);
        for b in &cfg.rpo {
            assert!(
                dom.dominates(BlockId(0), *b),
                "entry dominates {b} (seed {seed})"
            );
            if let Some(idom) = dom.idom(*b) {
                assert!(
                    dom.strictly_dominates(idom, *b),
                    "idom strict (seed {seed})"
                );
            }
        }
        let pdom = DomTree::postdominators(&cfg);
        for b in &cfg.rpo {
            if let Some(ip) = pdom.idom(*b) {
                assert!(
                    pdom.strictly_dominates(ip, *b),
                    "ipdom strict (seed {seed}, block {b})"
                );
            }
        }
    }
}

/// Slices always contain their criterion and never exceed the program.
#[test]
fn slice_contains_criterion_for_every_statement() {
    let mut pb = ProgramBuilder::new("t");
    let g = pb.global("g", 3);
    let helper = {
        let mut h = pb.function("helper", &["x"]);
        let x = h.var("x");
        let v = h.load("v", g.into());
        let s = h.add("s", x.into(), v.into());
        h.store(g.into(), s.into());
        h.ret(Some(s.into()));
        h.finish()
    };
    let mut m = pb.function("main", &[]);
    let a = m.const_i64("a", 2);
    let head = m.new_block("head");
    let body = m.new_block("body");
    let exit = m.new_block("exit");
    m.br(head);
    m.switch_to(head);
    let v = m.load("v", g.into());
    let c = m.cmp("c", CmpKind::Gt, v.into(), 0.into());
    m.condbr(c.into(), body, exit);
    m.switch_to(body);
    m.call_direct("r", helper, &[a.into()]);
    m.br(head);
    m.switch_to(exit);
    m.ret(None);
    m.finish();
    let p = pb.finish().unwrap();
    let slicer = StaticSlicer::new(&p);
    for id in p.all_stmt_ids() {
        let slice = slicer.compute(id);
        assert!(slice.contains(id), "criterion {id} in its own slice");
        assert!(slice.len() <= p.stmt_count());
        assert_eq!(slice.ordered[0], id, "criterion first in backward order");
    }
}

/// VM determinism: identical seeds give identical outcomes and outputs,
/// across every scheduler kind.
#[test]
fn vm_determinism_across_scheduler_kinds() {
    let text = r#"
global x = 0
fn w(a) {
entry:
  v = load $x
  v2 = add v, a
  store $x, v2
  ret
}
fn main() {
entry:
  t1 = spawn w(1)
  t2 = spawn w(2)
  join t1
  join t2
  v = load $x
  print v
  ret
}
"#;
    let p = gist_ir::parser::parse_program("t", text).unwrap();
    let kinds = [
        SchedulerKind::RoundRobin { quantum: 2 },
        SchedulerKind::Random {
            seed: 11,
            preempt: 0.4,
        },
        SchedulerKind::Fixed {
            script: vec![0, 1, 2, 0, 1, 2],
        },
    ];
    for kind in kinds {
        let run = |k: SchedulerKind| {
            let cfg = VmConfig {
                scheduler: k,
                ..VmConfig::default()
            };
            let r = Vm::new(&p, cfg).run(&mut []);
            (format!("{:?}", r.outcome), r.output, r.steps)
        };
        assert_eq!(run(kind.clone()), run(kind));
    }
}

/// The textual format round-trips: printing a program and re-parsing it
/// yields an identical program (checked by a second print reaching a
/// fixpoint), for every bugbase program.
#[test]
fn text_format_roundtrips_all_bugbase_programs() {
    use gist_ir::parser::parse_program;
    use gist_ir::printer::print_program;
    for bug in gist_bugbase::all_bugs() {
        let once = print_program(&bug.program);
        let reparsed = parse_program(&bug.program.name, &once)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", bug.name));
        let twice = print_program(&reparsed);
        assert_eq!(once, twice, "{}: printer/parser fixpoint", bug.name);
        assert_eq!(
            bug.program.stmt_count(),
            reparsed.stmt_count(),
            "{}: statement count preserved",
            bug.name
        );
        // The reparsed program behaves identically.
        let run = |p: &gist_ir::Program| {
            let mut vm = Vm::new(p, bug.vm_config(3));
            let r = vm.run(&mut []);
            (format!("{:?}", r.outcome), r.output, r.steps)
        };
        assert_eq!(run(&bug.program), run(&reparsed), "{}", bug.name);
    }
}

/// Dataflow consistency (the monotone framework's two flagship problems
/// agree): at every register *use site* in every bugbase program, the used
/// register is live-in there, and it either has a reaching definition at
/// that point or is a parameter of its function. Liveness flows backward
/// and reaching definitions forward over the same TICFG, so any path that
/// reads a register must have passed its (never-killed, SSA) def — a
/// mismatch would mean a transfer function or the worklist solver is
/// wrong.
///
/// The check anchors at use sites rather than raw live-in sets: the
/// may-TICFG conflates all spawn/join pairs of a routine, so a joined tid
/// can leak backward through the routine into an *earlier* spawn site
/// where its def genuinely does not reach. At the use itself both
/// solutions must agree.
#[test]
fn used_registers_are_live_with_reaching_defs_in_all_bugbase_programs() {
    use gist_analysis::{live_variables, reaching_definitions, PointsTo};
    use gist_ir::icfg::Icfg;
    for bug in gist_bugbase::all_bugs() {
        let p = &bug.program;
        let ticfg = Icfg::build_ticfg(p);
        let pts = PointsTo::compute(p, &ticfg);
        let live = live_variables(p, &ticfg);
        let reach = reaching_definitions(p, &ticfg, &pts);
        let mut use_sites = 0usize;
        for id in p.all_stmt_ids() {
            let Some(f) = p.stmt_func(id) else { continue };
            let uses: Vec<_> = match (p.instr(id), p.terminator(id)) {
                (Some(i), _) => i.op.uses(),
                (None, Some(t)) => t.uses(),
                _ => continue,
            };
            for v in uses.iter().filter_map(|u| u.as_var()) {
                use_sites += 1;
                assert!(
                    live.before(id).contains(&(f, v)),
                    "{}: {:?} used at {:?} but not live-in",
                    bug.name,
                    (f, v),
                    id
                );
                let is_param = p.function(f).params.contains(&v);
                let has_def = reach.before(id).iter().any(|&d| {
                    p.stmt_func(d) == Some(f) && p.instr(d).and_then(|i| i.op.def()) == Some(v)
                });
                assert!(
                    has_def || is_param,
                    "{}: {:?} used at {:?} with no reaching def",
                    bug.name,
                    (f, v),
                    id
                );
            }
        }
        assert!(use_sites > 0, "{}: no register uses visited", bug.name);
    }
}
