//! MHP soundness gate: the static may-happen-in-parallel relation must
//! never rule out an interleaving the dynamic pipeline actually observed.
//!
//! Every bugbase diagnosis is replayed against a fresh flight-recorder
//! journal, and the `watch.hit` stream is mined for *observed-parallel*
//! statement pairs under a mutual-span-containment criterion: within one
//! production run, each thread's activity span is `[first, last]` over
//! its hit sequence numbers, and a cross-thread pair counts as observed
//! in parallel only when each access falls strictly inside the *other*
//! thread's span — both threads were provably mid-flight around both
//! accesses. Any static cross-thread ordering claim (pre-spawn,
//! post-join, join-before-spawn chaining) implies the spans separate, so
//! `may_happen_in_parallel` must say yes for every such pair.
//!
//! One `#[test]` in its own integration binary: the journal is a
//! process-global sink, so this cannot share a process with other
//! event-producing tests.

use std::collections::BTreeMap;

use gist_analysis::Mhp;
use gist_bugbase::all_bugs;
use gist_coop::{diagnose_bug, EvalConfig};
use gist_ir::InstrId;
use gist_slicing::StaticSlicer;

/// One attributed watchpoint hit: `(statement, thread, run-local seq)`.
type Hit = (InstrId, u32, u64);

/// Groups the journal's `watch.hit` events into per-run hit lists.
/// Batched production runs execute on parallel fleet workers, so events
/// from different runs interleave in the global journal — but one run's
/// events are all journaled by the same worker thread, in order. The
/// stream is therefore partitioned by the *journaling* thread first;
/// within a worker's stream, `run.started` delimits runs, with a
/// `hit_seq` reset (each run numbers accesses from a fresh counter) as a
/// backstop.
fn runs_from_journal(events: &[gist_obs::JournalEvent]) -> Vec<Vec<Hit>> {
    let mut runs: Vec<Vec<Hit>> = Vec::new();
    let mut per_worker: BTreeMap<u64, (Vec<Hit>, Option<u64>)> = BTreeMap::new();
    for e in events {
        let worker = u64::from(e.tid);
        if e.kind == "run.started" {
            let (current, last_seq) = per_worker.entry(worker).or_default();
            if !current.is_empty() {
                runs.push(std::mem::take(current));
            }
            *last_seq = None;
            continue;
        }
        if e.kind != "watch.hit" {
            continue;
        }
        let (Some(iid), Some(tid), Some(seq)) = (
            e.field_u64("iid"),
            e.field_u64("hit_tid"),
            e.field_u64("hit_seq"),
        ) else {
            continue;
        };
        let (current, last_seq) = per_worker.entry(worker).or_default();
        if last_seq.is_some_and(|prev| seq <= prev) && !current.is_empty() {
            runs.push(std::mem::take(current));
        }
        *last_seq = Some(seq);
        current.push((InstrId(iid as u32), tid as u32, seq));
    }
    for (_, (current, _)) in per_worker {
        if !current.is_empty() {
            runs.push(current);
        }
    }
    runs
}

/// The observed-parallel pairs of one run: cross-thread hit pairs where
/// each access lands strictly inside the other thread's activity span.
fn observed_parallel(run: &[Hit]) -> Vec<(InstrId, InstrId)> {
    let mut spans: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for &(_, tid, seq) in run {
        let span = spans.entry(tid).or_insert((seq, seq));
        span.0 = span.0.min(seq);
        span.1 = span.1.max(seq);
    }
    let mut pairs = Vec::new();
    for &(a, ta, sa) in run {
        for &(b, tb, sb) in run {
            if ta >= tb {
                continue;
            }
            let (lo_b, hi_b) = spans[&tb];
            let (lo_a, hi_a) = spans[&ta];
            if lo_b < sa && sa < hi_b && lo_a < sb && sb < hi_a {
                pairs.push((a, b));
            }
        }
    }
    pairs.sort();
    pairs.dedup();
    pairs
}

#[test]
fn observed_parallel_pairs_are_mhp_positive() {
    if cfg!(feature = "metrics-off") {
        // The flight recorder compiles to no-ops; there is no journal to
        // mine for observed interleavings.
        return;
    }
    let mut checked = 0usize;
    for bug in all_bugs() {
        gist_obs::reset();
        let _ = diagnose_bug(&bug, &EvalConfig::default());
        let events = gist_obs::journal::to_events(&gist_obs::journal::drain());
        let slicer = StaticSlicer::new(&bug.program);
        let mhp = Mhp::compute(&bug.program, slicer.ticfg());
        for run in runs_from_journal(&events) {
            for (a, b) in observed_parallel(&run) {
                assert!(
                    mhp.may_happen_in_parallel(a, b),
                    "{}: statements {a:?} and {b:?} were observed in \
                     parallel (mutual span containment) but MHP claims \
                     they never interleave: {:?}",
                    bug.name,
                    mhp.order_fact(a, b),
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 0,
        "the gate never fired: no observed-parallel pairs in any journal"
    );
}
