//! Integration checks for the baselines: record/replay determinism across
//! the whole bug suite, the Fig. 13 volume asymmetry, and the CBI latency
//! comparison on real diagnosis observations.

use gist_baselines::{CostModel, Recorder, SamplingIsolator};
use gist_bugbase::all_bugs;
use gist_pt::{PtConfig, PtDriver, PtTracer};
use gist_vm::Vm;

#[test]
fn record_replay_holds_for_every_bug() {
    for bug in all_bugs() {
        for seed in [0u64, 3, 11] {
            let cfg = bug.vm_config(seed);
            let rec = Recorder::record(&bug.program, cfg.clone());
            assert!(
                Recorder::replay(&bug.program, cfg, &rec),
                "{} seed {seed}: replay diverged",
                bug.name
            );
        }
    }
}

#[test]
fn fig13_shape_rr_log_dwarfs_pt_trace_on_every_program() {
    let model = CostModel::default();
    for bug in all_bugs() {
        let cfg = bug.vm_config(5);
        let rec = Recorder::record(&bug.program, cfg.clone());
        let mut tracer = PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&bug.program, cfg);
        let r = vm.run(&mut [&mut tracer]);
        tracer.finish();
        let pt_bytes = tracer.total_bytes() as u64;
        assert!(
            rec.log_bytes() as u64 > pt_bytes,
            "{}: rr {}B vs pt {}B",
            bug.name,
            rec.log_bytes(),
            pt_bytes
        );
        let rr_pct = model.rr_overhead_pct(rec.event_count(), r.steps);
        let pt_pct = model.pt_full_overhead_pct(pt_bytes, r.steps);
        assert!(
            rr_pct > pt_pct * 5.0,
            "{}: rr {rr_pct:.0}% vs pt {pt_pct:.1}% — the Fig. 13 gap collapsed",
            bug.name
        );
    }
}

#[test]
fn pt_full_tracing_stays_percent_scale_while_rr_is_multiples() {
    let model = CostModel::default();
    let mut pt_avg = 0.0;
    let mut rr_avg = 0.0;
    let bugs = all_bugs();
    for bug in &bugs {
        let cfg = bug.vm_config(9);
        let rec = Recorder::record(&bug.program, cfg.clone());
        let mut tracer = PtTracer::new(&bug.program, PtDriver::always_on(), PtConfig::default());
        let mut vm = Vm::new(&bug.program, cfg);
        let r = vm.run(&mut [&mut tracer]);
        tracer.finish();
        pt_avg += model.pt_full_overhead_pct(tracer.total_bytes() as u64, r.steps);
        rr_avg += model.rr_overhead_pct(rec.event_count(), r.steps);
    }
    pt_avg /= bugs.len() as f64;
    rr_avg /= bugs.len() as f64;
    // Paper: PT 11% average, rr 984% average. Shape: PT well under 100%,
    // rr in the several-hundreds at least.
    assert!(pt_avg < 100.0, "PT full-trace average {pt_avg:.1}%");
    assert!(rr_avg > 300.0, "rr average {rr_avg:.0}%");
}

#[test]
fn sampling_isolator_lags_always_on_gist_on_real_observations() {
    use gist_core::server::observations;
    use gist_core::Fleet;
    use gist_predictors::rank;
    use gist_tracking::{Planner, TrackerRuntime};

    // Gather real run observations for curl (sequential: the value
    // predictor at the crashing load is the ground truth).
    let bug = all_bugs()
        .into_iter()
        .find(|b| b.name == "curl-965")
        .unwrap();
    let (_, report) = bug.find_failure(100).unwrap();
    let slicer = gist_slicing::StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    let patch = planner.plan(slice.prefix(8), 0);
    let mut fleet = |p: &gist_tracking::InstrumentationPatch, seed: u64| {
        let mut tracker = TrackerRuntime::new(&bug.program, p.clone(), 4);
        let mut vm = Vm::new(&bug.program, bug.vm_config(seed));
        let r = vm.run(&mut [&mut tracker]);
        (
            matches!(r.outcome, gist_vm::RunOutcome::Failed(_)),
            tracker.finish(),
        )
    };
    let _ = &mut fleet as &mut dyn FnMut(&_, u64) -> _; // keep closure typed
    let runs: Vec<_> = (0..120u64)
        .map(|seed| {
            let (failing, trace) = fleet(&patch, seed);
            observations(&trace, failing)
        })
        .collect();
    let truth = rank(&runs, 0.5)
        .into_iter()
        .next()
        .expect("some predictor")
        .predictor;

    let always =
        gist_baselines::cbi::always_on_failing_runs_until_found(&runs, &truth, 0.5).unwrap();
    let mut total = 0usize;
    for seed in 0..8 {
        let mut iso = SamplingIsolator::new(25, seed);
        total += iso
            .failing_runs_until_found(&runs, &truth, 0.5)
            .unwrap_or(runs.iter().filter(|r| r.failing).count());
    }
    let avg_sampled = total as f64 / 8.0;
    assert!(
        avg_sampled >= always as f64,
        "sampling ({avg_sampled:.1}) cannot beat always-on ({always})"
    );
    // Silence unused Fleet import if the blanket impl is unused here.
    fn _assert_fleet<F: Fleet>(_: &F) {}
}
