//! Generator invariants of the synthetic bugbase (`gist_bugbase::synth`).
//!
//! Three contracts, each directly load-bearing for the statistical
//! accuracy claim of `repro bench --synthetic`:
//!
//! 1. **Determinism** — a bug is a pure function of its seed: same seed,
//!    byte-identical program text and ground truth, and the text parses
//!    back into a program that prints identically (so fixtures can be
//!    archived and replayed).
//! 2. **Injection invariants** — every generated program contains
//!    exactly one root-cause pattern: it manifests the expected failure
//!    kind (but not on every schedule), the lints report exactly the
//!    expected `GA0xx` code on the injected lines, and the sequential
//!    controls diagnose completely clean, statically and dynamically.
//! 3. **Distribution** — all nine injected pattern shapes appear within
//!    a small seed range, so an N=100 bench exercises every family.

use std::collections::BTreeSet;

use gist_analysis::ground_truth as gt;
use gist_bugbase::synth::{
    self, generate, generate_control, generate_with_pattern, GroundTruth, Model, PatternKind,
    SynthBug, SYNTH_FILE,
};
use gist_ir::parser::parse_program;
use gist_vm::{RunOutcome, Vm};

/// Seeds used by the per-pattern invariants (kept small: each pattern ×
/// seed runs 40 schedules).
const SAMPLE_SEEDS: [u64; 4] = [0, 1, 5, 7];

#[test]
fn same_seed_means_byte_identical_program_and_truth() {
    for seed in [0, 1, 42, 12345, 0xFEED_FACE] {
        let a = generate(seed);
        let b = generate(seed);
        assert_eq!(a.text(), b.text(), "program text differs for seed {seed}");
        assert_eq!(
            a.truth.render(),
            b.truth.render(),
            "ground truth differs for seed {seed}"
        );
        assert_eq!(Model::from_seed(seed), Model::from_seed(seed));
    }
}

#[test]
fn printed_text_parses_back_and_reprints_identically() {
    for seed in [0, 3, 99] {
        let bug = generate(seed);
        let text = bug.text();
        let reparsed = parse_program(&bug.name, &text)
            .unwrap_or_else(|e| panic!("{}: text does not reparse: {e:?}", bug.name));
        assert_eq!(
            gist_ir::printer::print_program(&reparsed),
            text,
            "{}: print/parse/print is not a fixpoint",
            bug.name
        );
        assert_eq!(
            reparsed.entry,
            reparsed.function_by_name("main").expect("has main").id,
            "{}: reparsed entry is not main",
            bug.name
        );
    }
}

#[test]
fn truth_render_parse_roundtrips_for_generated_bugs() {
    for seed in 0..20u64 {
        let bug = generate(seed);
        let parsed = GroundTruth::parse(&bug.truth.render()).expect("truth parses");
        assert_eq!(parsed, bug.truth, "seed {seed}");
    }
}

#[test]
fn all_nine_patterns_appear_within_100_seeds() {
    let seen: BTreeSet<PatternKind> = (0..100).map(|s| generate(s).truth.pattern).collect();
    for p in PatternKind::INJECTED {
        assert!(seen.contains(&p), "pattern {p:?} absent from seeds 0..100");
    }
}

#[test]
fn every_injection_manifests_but_not_on_every_schedule() {
    for pattern in PatternKind::INJECTED {
        for seed in SAMPLE_SEEDS {
            let bug = generate_with_pattern(seed, pattern);
            let found = bug.find_failure(400);
            assert!(
                found.is_some(),
                "{}: injected failure never manifests",
                bug.name
            );
            let (_, report) = found.unwrap();
            let expected = bug.truth.expected.expect("injected bugs expect a failure");
            assert!(
                expected.matches(&report.kind),
                "{}: manifested {:?}, expected {:?}",
                bug.name,
                report.kind,
                expected
            );
            let rate = bug.failure_rate(40);
            assert!(rate > 0.0, "{}: zero failure rate", bug.name);
            assert!(
                rate < 1.0,
                "{}: fails on every schedule — successful runs are required \
                 for the statistical predictor",
                bug.name
            );
        }
    }
}

#[test]
fn lints_report_exactly_the_injected_code_on_the_injected_lines() {
    for pattern in PatternKind::INJECTED {
        for seed in SAMPLE_SEEDS {
            let bug = generate_with_pattern(seed, pattern);
            let diags = gt::lint_all(&bug.program);
            let code = bug.truth.code().expect("injected patterns have a code");
            let hist = gt::code_histogram(&diags);
            assert_eq!(
                hist.get(code),
                Some(&1),
                "{}: expected exactly one {code}, histogram {hist:?}",
                bug.name
            );
            let on_lines = gt::findings_on_lines(
                &bug.program,
                &diags,
                code,
                SYNTH_FILE,
                &bug.truth.static_lines,
            );
            assert!(
                !on_lines.is_empty(),
                "{}: the {code} finding does not reference the injected lines {:?}",
                bug.name,
                bug.truth.static_lines
            );
            if let Some(label) = pattern.av_label() {
                assert!(
                    on_lines
                        .iter()
                        .any(|d| d.message.contains(&format!("({label})"))),
                    "{}: GA022 finding misclassifies the AVIO shape, want ({label}): {:?}",
                    bug.name,
                    on_lines.iter().map(|d| &d.message).collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn ground_truth_lines_resolve_to_statements_and_threads_to_functions() {
    for seed in 0..30u64 {
        let bug = generate(seed);
        let t = &bug.truth;
        for (label, lines) in [
            ("root_cause", &t.root_cause_lines),
            ("static", &t.static_lines),
            ("ideal", &t.ideal_lines),
            ("order", &t.order_lines),
        ] {
            for &line in lines.iter() {
                assert!(
                    !bug.stmts_at(line).is_empty(),
                    "{}: {label} line {line} has no statements",
                    bug.name
                );
            }
        }
        for name in &t.threads {
            assert!(
                bug.program.function_by_name(name).is_some(),
                "{}: ground-truth thread '{name}' is not a function",
                bug.name
            );
        }
    }
}

#[test]
fn controls_diagnose_clean_statically_and_dynamically() {
    for seed in 0..8u64 {
        let bug = generate_control(seed);
        let diags = gt::lint_all(&bug.program);
        assert!(
            diags.is_empty(),
            "{}: control has findings: {:?}",
            bug.name,
            diags.iter().map(|d| d.code).collect::<Vec<_>>()
        );
        assert!(
            gt::predictions(&bug.program).is_empty(),
            "{}: control has predicted sketches",
            bug.name
        );
        for vs in 0..40u64 {
            let mut vm = Vm::new(&bug.program, synth::synth_config(vs));
            assert!(
                matches!(vm.run(&mut []).outcome, RunOutcome::Finished),
                "{}: control failed under schedule seed {vs}",
                bug.name
            );
        }
    }
}

#[test]
fn generated_programs_pass_the_ir_verifier() {
    for seed in 0..50u64 {
        for bug in [generate(seed), generate_control(seed)] {
            let diags = gist_analysis::verify(&bug.program);
            assert!(
                !gist_analysis::has_errors(&diags),
                "{}: verifier errors: {:?}",
                bug.name,
                diags
            );
        }
    }
}

#[test]
fn shrinking_removes_scaffolding_but_preserves_the_injection() {
    // A property that only needs the pattern: every scaffold element is
    // removable, so the shrunk model is scaffolding-free.
    let model = Model::with_pattern(11, PatternKind::UseAfterFree);
    let shrunk = synth::shrink(&model, |bug: &SynthBug| bug.find_failure(100).is_some());
    assert_eq!(shrunk.pattern, PatternKind::UseAfterFree);
    assert!(shrunk.helpers.is_empty(), "helpers not shrunk: {shrunk:?}");
    assert!(
        shrunk.spinners.is_empty(),
        "spinners not shrunk: {shrunk:?}"
    );
    assert_eq!(shrunk.pad, 0, "pad not shrunk");
    let min = SynthBug::from_model(shrunk);
    assert!(
        min.find_failure(100).is_some(),
        "shrunk program no longer manifests"
    );
}
