//! Accuracy-shaped assertions for Figs. 9, 10, and 12.
//!
//! The paper reports: average relevance 92%, ordering 100%, overall 96%
//! (Fig. 9); every technique contributes for some program (Fig. 10);
//! larger initial σ lowers recurrence latency while σ past the ideal
//! sketch size costs accuracy (Fig. 12). Absolute values differ on our
//! miniatures; the assertions capture the shape with safety margins.

use gist_bench::experiments;
use gist_bugbase::all_bugs;
use gist_coop::{diagnose_bug, EvalConfig};

#[test]
fn fig9_average_accuracy_is_high() {
    let evals = experiments::table1();
    let n = evals.len() as f64;
    let avg_rel = evals.iter().map(|e| e.relevance).sum::<f64>() / n;
    let avg_ord = evals.iter().map(|e| e.ordering).sum::<f64>() / n;
    let avg_all = evals.iter().map(|e| e.overall).sum::<f64>() / n;
    assert!(avg_rel >= 60.0, "avg relevance {avg_rel:.1}%");
    assert!(avg_ord >= 85.0, "avg ordering {avg_ord:.1}%");
    assert!(avg_all >= 70.0, "avg overall {avg_all:.1}%");
    // Every individual bug clears a floor.
    for e in &evals {
        assert!(e.overall >= 40.0, "{}: overall {:.1}%", e.bug, e.overall);
    }
}

#[test]
fn fig10_full_gist_never_loses_to_ablations() {
    let rows = experiments::fig10();
    let n = rows.len() as f64;
    let avg_static = rows.iter().map(|r| r.static_only).sum::<f64>() / n;
    let avg_cf = rows.iter().map(|r| r.with_control_flow).sum::<f64>() / n;
    let avg_full = rows.iter().map(|r| r.full).sum::<f64>() / n;
    assert!(
        avg_full >= avg_static,
        "full {avg_full:.1}% vs static {avg_static:.1}%"
    );
    assert!(
        avg_full >= avg_cf - 1.0,
        "full {avg_full:.1}% vs +cf {avg_cf:.1}%"
    );
    // Control-flow tracking helps on average (it removes unexecuted slice
    // statements from the sketch).
    assert!(
        avg_cf >= avg_static - 1.0,
        "+cf {avg_cf:.1}% vs static {avg_static:.1}%"
    );
    // And data-flow tracking is what makes some bug reach its root cause:
    // at least one bug improves from +cf to full.
    assert!(
        rows.iter().any(|r| r.full > r.with_control_flow + 1.0) || avg_full > avg_cf,
        "data flow contributed nowhere: {rows:?}"
    );
}

#[test]
fn fig12_latency_drops_as_sigma_grows() {
    let rows = experiments::fig12();
    let first = rows.first().expect("has rows");
    let last = rows.last().expect("has rows");
    assert!(first.sigma0 < last.sigma0);
    // Recurrence latency: strictly fewer recurrences with a large initial
    // σ than with σ=2 (the paper: σ=23 reaches one-recurrence latency).
    assert!(
        last.avg_recurrences <= first.avg_recurrences,
        "σ={} needed {:.1} recs, σ={} needed {:.1}",
        first.sigma0,
        first.avg_recurrences,
        last.sigma0,
        last.avg_recurrences
    );
    // Accuracy stays usable at every σ (AsT can always keep growing).
    for r in &rows {
        assert!(
            r.avg_accuracy > 40.0,
            "σ₀={} acc {:.1}",
            r.sigma0,
            r.avg_accuracy
        );
    }
}

#[test]
fn grey_prefix_excess_statements_are_a_prefix_not_sprinkled() {
    // §5.2: "excess statements [are] clustered as a prefix" — check that
    // for the Fig. 8 bug, non-ideal statements come before the first
    // ideal-only suffix in sketch order.
    let bug = all_bugs()
        .into_iter()
        .find(|b| b.name == "apache-21287")
        .unwrap();
    let eval = diagnose_bug(&bug, &EvalConfig::default());
    let ideal = bug.ideal_stmts();
    let steps = &eval.sketch.steps;
    if let Some(last_grey) = steps.iter().rposition(|s| !ideal.contains(&s.stmt)) {
        let ideal_before_grey = steps[..last_grey]
            .iter()
            .filter(|s| ideal.contains(&s.stmt))
            .count();
        let ideal_total = steps.iter().filter(|s| ideal.contains(&s.stmt)).count();
        // Most ideal statements come after the last grey one.
        assert!(
            ideal_before_grey * 2 <= ideal_total + 1,
            "grey statements sprinkled through the sketch:\n{}",
            eval.sketch.render()
        );
    }
}
