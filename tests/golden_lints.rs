//! Golden snapshot tests for the gist-lint detector suite.
//!
//! Every bugbase bug's lint report (the value-flow detectors GA020–GA023
//! plus the shared verifier/dead-store passes) is pinned byte-for-byte
//! under `tests/golden/<bug>.lints`. A detector or SVFG change that alters
//! any finding fails here with a line diff.
//!
//! To accept intentional changes, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gist-bench --test golden_lints
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use gist_analysis::{lint_passes, render_report, Severity};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A readable line diff: every differing line as `-expected` / `+actual`.
fn line_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if let Some(e) = e {
                let _ = writeln!(out, "  line {:>3} - {e}", i + 1);
            }
            if let Some(a) = a {
                let _ = writeln!(out, "  line {:>3} + {a}", i + 1);
            }
        }
    }
    out
}

/// Renders one bug's lint report exactly as `gist-analyze lint` prints it.
fn lint_report(bug: &gist_bugbase::BugSpec) -> String {
    let pm = lint_passes();
    let diags = pm.run(&bug.program);
    if diags.is_empty() {
        format!("ok: no findings ({} passes)\n", pm.pass_names().len())
    } else {
        render_report(Some(&bug.program), &diags)
    }
}

fn check_bug(bug: &gist_bugbase::BugSpec, failures: &mut Vec<String>) {
    let rendered = lint_report(bug);
    let path = golden_dir().join(format!("{}.lints", bug.name));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!(
                "{}: no golden snapshot at {} ({e}); run with UPDATE_GOLDEN=1",
                bug.name,
                path.display()
            ));
            return;
        }
    };
    if golden != rendered {
        failures.push(format!(
            "{}: lint report differs from {} (UPDATE_GOLDEN=1 to accept):\n{}",
            bug.name,
            path.display(),
            line_diff(&golden, &rendered)
        ));
    }
}

#[test]
fn lint_reports_match_golden_snapshots() {
    let mut failures = Vec::new();
    for bug in &gist_bugbase::all_bugs() {
        check_bug(bug, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "{} lint report(s) changed:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The detectors never report an error-severity diagnostic on the bugbase
/// (the miniatures are real bugs, flagged as warnings) and never flag the
/// sequential single-thread programs with a concurrency lint.
#[test]
fn lint_suite_flags_known_bugs_without_false_positives() {
    let concurrency_codes = ["GA020", "GA021", "GA022", "GA024"];
    for bug in gist_bugbase::all_bugs() {
        let diags = lint_passes().run(&bug.program);
        for d in &diags {
            assert_eq!(
                d.severity,
                Severity::Warning,
                "{}: lint {} must be a warning on runnable bugbase code",
                bug.name,
                d.code
            );
        }
        let threads = bug.program.functions.iter().any(|f| {
            f.blocks
                .iter()
                .flat_map(|b| b.instrs.iter())
                .any(|i| matches!(i.op, gist_ir::Op::ThreadCreate { .. }))
        });
        if !threads {
            for d in &diags {
                assert!(
                    !concurrency_codes.contains(&d.code),
                    "{}: sequential program flagged with concurrency lint {}",
                    bug.name,
                    d.code
                );
            }
        }
    }
}
