//! End-to-end integration: the full Gist pipeline on every bugbase bug.
//!
//! This is the repository's Table-1-shaped smoke test: for each of the 11
//! bugs, diagnosis must find the root cause, the sketch must be a sensible
//! subset of the program, and the latency must be a handful of failure
//! recurrences — the paper reports 2–5.

use gist_bugbase::{all_bugs, BugClass};
use gist_coop::{diagnose_bug, EvalConfig};

#[test]
fn every_bug_diagnoses_to_its_root_cause() {
    for bug in all_bugs() {
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        assert!(
            eval.found_root_cause,
            "{}: root cause missing from sketch\n{}",
            bug.name,
            eval.sketch.render()
        );
        assert!(
            eval.recurrences >= 1,
            "{}: no failure recurrence consumed",
            bug.name
        );
        assert!(
            eval.sketch_instrs > 0 && eval.sketch_instrs <= bug.program_stmts(),
            "{}: sketch size {} out of range",
            bug.name,
            eval.sketch_instrs
        );
        // The slice is a subset of the program; the sketch focuses further
        // (Table 1's shape: slice ≥ sketch for the larger slices).
        assert!(
            eval.slice_instrs <= bug.program_stmts(),
            "{}: slice bigger than program",
            bug.name
        );
    }
}

#[test]
fn concurrency_bugs_get_order_predictors_sequential_get_value_or_branch() {
    for bug in all_bugs() {
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        let cats: Vec<&str> = eval
            .sketch
            .predictors
            .iter()
            .filter(|p| p.f_measure(0.5) > 0.0)
            .map(|p| p.predictor.category())
            .collect();
        match bug.class {
            BugClass::Sequential => assert!(
                cats.contains(&"value") || cats.contains(&"branch"),
                "{}: sequential bug needs a value/branch predictor, got {cats:?}",
                bug.name
            ),
            BugClass::Concurrency => assert!(
                !cats.is_empty(),
                "{}: no failure predictor emerged",
                bug.name
            ),
        }
    }
}

#[test]
fn sketches_render_with_type_line_and_threads() {
    for bug in all_bugs() {
        let eval = diagnose_bug(&bug, &EvalConfig::default());
        let text = eval.sketch.render();
        assert!(
            text.contains(bug.class.label()),
            "{}: type line missing",
            bug.name
        );
        assert!(text.contains("Thread T"), "{}: no thread column", bug.name);
        if bug.class == BugClass::Concurrency {
            assert!(
                eval.sketch.threads.len() >= 2,
                "{}: concurrency sketch should span threads: {}",
                bug.name,
                text
            );
        }
    }
}

#[test]
fn race_ranking_never_regresses_sketch_accuracy() {
    // Race-candidate seeding recovers statements the alias-free slice
    // misses (pbzip2's free) and the watch ordering lets strong order
    // predictors emerge in fewer recurrences. Faster convergence can stop
    // AsT before the σ-prefix swallows every ideal statement, so a bug may
    // trade a few points of sketch completeness for halved latency — but
    // in aggregate accuracy must not regress, no single bug may fall off a
    // cliff, and every bug must stay above the 70% quality bar it already
    // meets without ranking.
    let mut sum_on = 0.0;
    let mut sum_off = 0.0;
    for bug in all_bugs() {
        let on = diagnose_bug(&bug, &EvalConfig::default());
        let off = diagnose_bug(
            &bug,
            &EvalConfig {
                enable_race_ranking: false,
                ..EvalConfig::default()
            },
        );
        sum_on += on.overall;
        sum_off += off.overall;
        assert!(
            on.overall >= off.overall - 10.0,
            "{}: accuracy fell off a cliff with ranking on: {:.1}% vs {:.1}%",
            bug.name,
            on.overall,
            off.overall
        );
        assert!(
            on.overall >= 70.0 || off.overall < 70.0,
            "{}: ranking dragged accuracy below the bar: {:.1}% vs {:.1}%",
            bug.name,
            on.overall,
            off.overall
        );
    }
    assert!(
        sum_on >= sum_off - 1e-9,
        "aggregate accuracy regressed with ranking on: {:.1} vs {:.1}",
        sum_on,
        sum_off
    );
}

#[test]
fn diagnosis_latency_is_a_handful_of_recurrences() {
    // The paper's Table 1 reports 2–5 recurrences per bug (with one
    // failing run gathered per iteration). Our harness gathers several
    // failing runs per iteration for statistical strength; the equivalent
    // latency bound is recurrences ≤ iterations × failing_per_iteration
    // with few iterations.
    let cfg = EvalConfig {
        failing_per_iteration: 1,
        ..EvalConfig::default()
    };
    for bug in all_bugs() {
        let eval = diagnose_bug(&bug, &cfg);
        assert!(
            eval.recurrences <= 16,
            "{}: took {} recurrences",
            bug.name,
            eval.recurrences
        );
    }
}
