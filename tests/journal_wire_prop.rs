//! Property tests for the flight-recorder wire format: for *arbitrary*
//! [`EventRecord`]s — every kind, max varints, empty payloads, unicode
//! strings — the binary journal must round-trip exactly:
//!
//! 1. `to_binary` → `parse_binary` reproduces the records and the meta
//!    stats bit-for-bit (canonical encoding, lossless decode).
//! 2. The JSONL export rendered from the decoded records is byte-identical
//!    to the JSONL rendered from the originals (the export is lossless),
//!    and `parse_jsonl` recovers the schema-level view of every record.
//! 3. A [`StreamDecoder`] fed the same bytes in arbitrary chunk sizes
//!    (down to one byte at a time) yields exactly the `parse_binary`
//!    result — incremental tailing never splits or drops a frame.
//!
//! These tests use only pure encode/decode functions (no process-global
//! journal state), so many `#[test]`s can share this binary safely.

use gist_obs::journal::{parse_binary, parse_jsonl, to_binary, to_events, to_jsonl, JournalStats};
use gist_obs::wire::{is_binary, StreamDecoder};
use gist_obs::{EventKind, EventRecord};
use proptest::prelude::*;

/// u64s biased toward varint boundaries: 0, one-byte max, continuation
/// edges, and `u64::MAX` (10-byte LEB128).
fn arb_u64() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(127u64),
        Just(128u64),
        Just(16_383u64),
        Just(16_384u64),
        Just(u64::MAX - 1),
        Just(u64::MAX),
        0u64..1_000_000,
    ]
}

fn arb_u32() -> impl Strategy<Value = u32> {
    prop_oneof![Just(0u32), Just(u32::MAX), 0u32..100_000]
}

/// i64s biased toward zigzag edges (both extremes map to max varints).
fn arb_i64() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(0i64),
        Just(-1i64),
        Just(1i64),
        Just(i64::MIN),
        Just(i64::MAX),
        -1_000_000i64..1_000_000,
    ]
}

fn arb_bool() -> impl Strategy<Value = bool> {
    prop_oneof![Just(false), Just(true)]
}

/// Strings including empty, plain ASCII, and arbitrary multi-byte UTF-8.
fn arb_str() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("Failure Sketch for pbzip2 0.9.4".to_owned()),
        proptest::collection::vec(1u32..0xD7FF, 0..12)
            .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect()),
    ]
}

/// Promotion/demotion reasons: the interned pool plus a non-interned
/// static (exercises the `Box::leak` fallback on decode).
fn arb_reason() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("race-seed"),
        Just("watch-discovery"),
        Just("never-executed"),
        Just("a reason the decoder has never seen"),
        Just(""),
    ]
}

fn arb_provenance() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(arb_u64(), 0..6)
}

/// Every [`EventKind`], with adversarial field values. Variants with more
/// than four fields nest tuples (the strategy tuples cap at four).
fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        arb_str().prop_map(|label| EventKind::TraceStarted { label }),
        (arb_u64(), arb_u64()).prop_map(|(iterations, recurrences)| EventKind::TraceFinished {
            iterations,
            recurrences
        }),
        (arb_u32(), arb_u64(), arb_bool()).prop_map(|(criterion, len, alias)| {
            EventKind::SliceComputed {
                criterion,
                len,
                alias,
            }
        }),
        (arb_u64(), arb_u64(), arb_u64()).prop_map(|(iteration, sigma, tracked)| {
            EventKind::IterationStarted {
                iteration,
                sigma,
                tracked,
            }
        }),
        (arb_u32(), arb_reason(), arb_u64(), arb_u64()).prop_map(|(iid, reason, via, sigma)| {
            EventKind::StmtPromoted {
                iid,
                reason,
                via,
                sigma,
            }
        }),
        (arb_u32(), arb_reason(), arb_u64())
            .prop_map(|(iid, reason, sigma)| { EventKind::StmtDemoted { iid, reason, sigma } }),
        (arb_u64(), arb_u64()).prop_map(|(run, seed)| EventKind::RunStarted { run, seed }),
        ((arb_u64(), arb_bool()), (arb_u64(), arb_u64())).prop_map(
            |((run, failing), (retired, hits))| EventKind::RunFinished {
                run,
                failing,
                retired,
                hits,
            }
        ),
        (arb_u64(), arb_u64(), arb_u64(), arb_u64()).prop_map(|(tracked, watch, group, bytes)| {
            EventKind::PatchPlanned {
                tracked,
                watch,
                group,
                bytes,
            }
        }),
        (arb_u64(), arb_u64()).prop_map(|(addr, slot)| EventKind::WatchArmed { addr, slot }),
        (
            (arb_u32(), arb_u64(), arb_i64()),
            (arb_u64(), arb_u32(), arb_bool())
        )
            .prop_map(|((iid, addr, value), (hit_seq, hit_tid, discovered))| {
                EventKind::WatchHit {
                    iid,
                    addr,
                    value,
                    hit_seq,
                    hit_tid,
                    discovered,
                }
            }),
        (arb_u32(), arb_u64(), arb_u64(), arb_u64()).prop_map(|(core, segment, bytes, stmts)| {
            EventKind::PtSegmentDecoded {
                core,
                segment,
                bytes,
                stmts,
            }
        }),
        (arb_u64(), arb_u64(), arb_u64()).prop_map(|(stmts, branches, bytes)| {
            EventKind::TraceDecoded {
                stmts,
                branches,
                bytes,
            }
        }),
        (arb_str(), arb_u64(), arb_u64(), arb_u32()).prop_map(|(category, rank, f_milli, iid)| {
            EventKind::PredictorRanked {
                category,
                rank,
                f_milli,
                iid,
            }
        }),
        (arb_u64(), arb_u32(), arb_provenance()).prop_map(|(step, iid, provenance)| {
            EventKind::SketchStepEmitted {
                step,
                iid,
                provenance,
            }
        }),
        arb_str().prop_map(|path| EventKind::SpanBegin { path }),
        arb_str().prop_map(|path| EventKind::SpanEnd { path }),
    ]
}

fn arb_record() -> impl Strategy<Value = EventRecord> {
    (arb_u64(), arb_u64(), arb_u32(), arb_kind()).prop_map(|(seq, trace, tid, kind)| EventRecord {
        seq,
        trace,
        tid,
        kind,
    })
}

fn arb_stats() -> impl Strategy<Value = JournalStats> {
    (arb_u64(), arb_u64()).prop_map(|(events_overwritten, oldest_seq)| JournalStats {
        events_overwritten,
        oldest_seq,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn binary_round_trips_records_and_stats(
        events in proptest::collection::vec(arb_record(), 0..40),
        stats in arb_stats(),
    ) {
        let binary = to_binary(&events, &stats);
        prop_assert!(is_binary(&binary), "encoded journal carries the magic");
        let (decoded, decoded_stats) = parse_binary(&binary).expect("binary parses");
        prop_assert_eq!(&decoded, &events);
        prop_assert_eq!(decoded_stats, stats);
        // Canonical encoding: re-encoding the decode is byte-identical.
        prop_assert_eq!(to_binary(&decoded, &decoded_stats), binary);
    }

    #[test]
    fn jsonl_export_from_binary_is_lossless(
        events in proptest::collection::vec(arb_record(), 0..40),
    ) {
        let stats = JournalStats::default();
        let (decoded, _) = parse_binary(&to_binary(&events, &stats)).expect("binary parses");
        let jsonl = to_jsonl(&events);
        prop_assert_eq!(to_jsonl(&decoded), jsonl.clone());
        // And the JSONL itself parses back to the schema-level view.
        // Compared *rendered*: JSON cannot distinguish `I64(5)` from
        // `U64(5)`, so Json-level equality would be spuriously strict.
        let parsed = parse_jsonl(&jsonl).expect("exported JSONL parses");
        let expected = to_events(&events);
        prop_assert_eq!(parsed.len(), expected.len());
        for (p, e) in parsed.iter().zip(&expected) {
            prop_assert_eq!((p.seq, p.trace, p.tid, &p.kind), (e.seq, e.trace, e.tid, &e.kind));
            prop_assert_eq!(p.data.render(), e.data.render());
        }
    }

    #[test]
    fn stream_decoder_matches_parse_binary_at_any_chunk_size(
        events in proptest::collection::vec(arb_record(), 0..24),
        stats in arb_stats(),
        chunk in 1usize..19,
    ) {
        let binary = to_binary(&events, &stats);
        let mut dec = StreamDecoder::new();
        let mut streamed = Vec::new();
        // Simulate arrival: `avail` grows by `chunk` bytes per turn; the
        // decoder is offered everything arrived-but-unconsumed and reports
        // via `pos` how much it took (a partial frame consumes nothing and
        // is re-offered once more bytes arrive).
        let mut fed = 0usize;
        let mut avail = 0usize;
        while fed < binary.len() {
            avail = (avail + chunk).min(binary.len());
            let mut pos = 0usize;
            let got = dec.feed(&binary[fed..avail], &mut pos).expect("stream decodes");
            streamed.extend(got);
            prop_assert!(pos <= avail - fed);
            fed += pos;
            if avail == binary.len() && pos == 0 {
                break;
            }
        }
        prop_assert_eq!(fed, binary.len(), "decoder consumed the whole journal");
        prop_assert_eq!(&streamed, &events);
        prop_assert_eq!(dec.stats, stats);
    }
}

/// The adversarial corners, pinned explicitly (the properties above reach
/// them probabilistically): all-max varints and an entirely empty record.
#[test]
fn extreme_records_round_trip() {
    let events = vec![
        EventRecord {
            seq: u64::MAX,
            trace: u64::MAX,
            tid: u32::MAX,
            kind: EventKind::WatchHit {
                iid: u32::MAX,
                addr: u64::MAX,
                value: i64::MIN,
                hit_seq: u64::MAX,
                hit_tid: u32::MAX,
                discovered: true,
            },
        },
        EventRecord {
            seq: 0,
            trace: 0,
            tid: 0,
            kind: EventKind::SketchStepEmitted {
                step: 0,
                iid: 0,
                provenance: Vec::new(),
            },
        },
        EventRecord {
            seq: 1,
            trace: 0,
            tid: 0,
            kind: EventKind::TraceStarted {
                label: String::new(),
            },
        },
    ];
    let stats = JournalStats {
        events_overwritten: u64::MAX,
        oldest_seq: u64::MAX,
    };
    let binary = to_binary(&events, &stats);
    let (decoded, decoded_stats) = parse_binary(&binary).expect("extremes parse");
    assert_eq!(decoded, events);
    assert_eq!(decoded_stats, stats);
    assert_eq!(to_jsonl(&decoded), to_jsonl(&events));
}

/// An empty journal still has a header + meta frame and round-trips.
#[test]
fn empty_journal_round_trips() {
    let stats = JournalStats::default();
    let binary = to_binary(&[], &stats);
    assert!(is_binary(&binary));
    let (decoded, decoded_stats) = parse_binary(&binary).expect("empty journal parses");
    assert!(decoded.is_empty());
    assert_eq!(decoded_stats, stats);
}
