//! Property test: the cross-run PT decode cache is output-invisible.
//!
//! For arbitrary packet streams — well-formed or not, with OVF packets,
//! mid-stream PSB resyncs, and arbitrary byte truncation — decoding
//! through a [`DecodeCache`] must produce exactly the same `Result` as a
//! cache-cold decode. One cache instance is shared across *all* generated
//! cases, so entries inserted by earlier cases are live (and must be
//! correctly rejected or replayed) for later ones, exercising both the
//! hit-verification path and cross-stream collisions.

use bytes::BytesMut;
use gist_ir::parser::parse_program;
use gist_ir::{InstrId, Program};
use gist_pt::{decode, decode_with_cache, DecodeCache, Packet};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A small program with loops, calls, and indirect transfers, so generated
/// `ip` payloads land on real statements of every flavor.
fn program() -> &'static Program {
    static P: OnceLock<Program> = OnceLock::new();
    P.get_or_init(|| {
        parse_program(
            "prop",
            r#"
fn inc(x) {
entry:
  y = add x, 1
  ret y
}
fn main() {
entry:
  n = const 3
  f = funcaddr inc
  br head
head:
  c = cmp gt n, 0
  condbr c, body, exit
body:
  n = sub n, 1
  m = icall f(n)
  br head
exit:
  print n
  ret
}
"#,
        )
        .expect("valid program")
    })
}

fn shared_cache() -> &'static DecodeCache {
    static C: OnceLock<DecodeCache> = OnceLock::new();
    C.get_or_init(DecodeCache::new)
}

/// Any statement id in range, plus a few out-of-range ones so desync
/// errors are exercised too.
fn arb_ip(stmt_count: usize) -> impl Strategy<Value = InstrId> {
    (0..stmt_count as u32 + 3).prop_map(InstrId)
}

fn arb_bool() -> impl Strategy<Value = bool> {
    (0u32..2).prop_map(|b| b == 1)
}

fn arb_packet(stmt_count: usize) -> impl Strategy<Value = Packet> {
    prop_oneof![
        Just(Packet::Psb),
        (0u32..3).prop_map(|tid| Packet::Pip { tid }),
        arb_ip(stmt_count).prop_map(|ip| Packet::Pge { ip }),
        arb_ip(stmt_count).prop_map(|ip| Packet::Pgd { ip }),
        proptest::collection::vec(arb_bool(), 1..7).prop_map(|bits| Packet::Tnt { bits }),
        arb_ip(stmt_count).prop_map(|ip| Packet::Tip { ip }),
        arb_ip(stmt_count).prop_map(|ip| Packet::Fup { ip }),
        Just(Packet::Ovf),
    ]
}

/// One core's stream: encoded packets, optionally truncated mid-packet
/// (what a real OVF/wrap does to the tail of a ring buffer).
fn arb_core_bytes(stmt_count: usize) -> impl Strategy<Value = Vec<u8>> {
    (
        proptest::collection::vec(arb_packet(stmt_count), 0..24),
        0usize..4096,
        arb_bool(),
    )
        .prop_map(|(packets, cut, truncate)| {
            let mut buf = BytesMut::new();
            for p in &packets {
                p.encode(&mut buf);
            }
            let mut bytes = buf.into_vec();
            if truncate && !bytes.is_empty() {
                bytes.truncate(cut % bytes.len());
            }
            bytes
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Cached decode equals cold decode — same `Ok` trace or same `Err` —
    /// and a repeat decode (now hitting entries the first pass inserted)
    /// still equals both.
    #[test]
    fn cached_decode_equals_cold_decode(
        cores in proptest::collection::vec(arb_core_bytes(program().stmt_count()), 1..4),
    ) {
        let p = program();
        let cache = shared_cache();
        let cold = decode(p, &cores);
        let first = decode_with_cache(p, &cores, cache);
        prop_assert_eq!(&cold, &first, "cold vs cache-miss decode");
        let second = decode_with_cache(p, &cores, cache);
        prop_assert_eq!(&cold, &second, "cold vs cache-hit decode");
    }
}
