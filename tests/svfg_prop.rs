//! Properties of the sparse value-flow graph (SVFG).
//!
//! Checked exhaustively over every bugbase program and every statement,
//! which is stronger than sampling: the miniatures are small enough that
//! the full cross-product runs in well under a second.
//!
//! 1. Intra-thread SVFG edges agree with reaching definitions: a
//!    `Direct` (register) or `Memory` (same-thread store) edge `def → use`
//!    only exists if `def` is in the reaching-defs fact before `use`.
//!    `Interleaved` edges deliberately carry no such guarantee, and
//!    `Param`/`Ret` edges cross call boundaries where the def site itself
//!    (the call or return) is the reaching definition.
//! 2. Sparse slices are subsets of legacy slices: for every criterion,
//!    every statement in `compute_with_svfg` also appears in `compute`.
//!    The SVFG prunes; it must never invent dependencies.

use gist_analysis::{reaching_definitions, PointsTo, Svfg, SvfgEdgeKind};
use gist_ir::icfg::Icfg;
use gist_ir::{InstrId, Program};
use gist_slicing::StaticSlicer;

fn all_instrs(program: &Program) -> Vec<InstrId> {
    program
        .functions
        .iter()
        .flat_map(|f| f.blocks.iter())
        .flat_map(|b| b.instrs.iter())
        .map(|i| i.id)
        .collect()
}

#[test]
fn intra_thread_edges_agree_with_reaching_defs() {
    for bug in gist_bugbase::all_bugs() {
        let program = &bug.program;
        let ticfg = Icfg::build_ticfg(program);
        let pts = PointsTo::compute(program, &ticfg);
        let rd = reaching_definitions(program, &ticfg, &pts);
        let svfg = Svfg::build_with(program, &ticfg, &pts);
        for use_site in svfg.use_sites() {
            for edge in svfg.edges_in(use_site) {
                if !matches!(edge.kind, SvfgEdgeKind::Direct | SvfgEdgeKind::Memory) {
                    continue;
                }
                assert!(
                    rd.before(use_site).contains(&edge.def),
                    "{}: {:?} edge {:?} -> {:?} has no reaching definition",
                    bug.name,
                    edge.kind,
                    edge.def,
                    use_site,
                );
            }
        }
    }
}

#[test]
fn svfg_slices_are_subsets_of_legacy_slices() {
    for bug in gist_bugbase::all_bugs() {
        let slicer = StaticSlicer::new(&bug.program);
        for criterion in all_instrs(&bug.program) {
            let legacy = slicer.compute(criterion);
            let sparse = slicer.compute_with_svfg(criterion);
            for &s in sparse.in_program_order().iter() {
                assert!(
                    legacy.contains(s),
                    "{}: criterion {:?}: sparse slice member {:?} missing from legacy slice",
                    bug.name,
                    criterion,
                    s,
                );
            }
            assert!(
                sparse.contains(criterion),
                "{}: sparse slice must contain its own criterion {:?}",
                bug.name,
                criterion,
            );
        }
    }
}
