//! Golden snapshot tests for *predicted* failure sketches — the static
//! forecasts `gist-analyze predict` derives from the happens-before/MHP
//! relation without ever running the program.
//!
//! Three contracts, one per test:
//!
//! 1. Every bug's rendered predictions are pinned byte-for-byte under
//!    `tests/golden/<bug>.predict` (`UPDATE_GOLDEN=1` to accept).
//! 2. Sequential bugs predict *nothing*: a program with no threads has
//!    no interleavings to forecast.
//! 3. The dynamic-core match gate: for each concurrency bug, at least
//!    one predicted sketch's cross-thread core — some step on one
//!    predicted thread paired with a step on the other — reappears in
//!    the bug's *dynamic* sketch (the root-cause diagnosis built from
//!    real failing runs) on distinct threads. Detector predictions
//!    (GA020–GA024) claim a causal direction — free before use, store
//!    before load — so their pairs must replay in the predicted order.
//!    A race prediction (GA010) is *unordered* by construction: the pair
//!    has no happens-before edge, both interleavings are statically
//!    feasible, and the dynamic sketch fixes the direction at runtime —
//!    so its pair may match in either order.

use std::fmt::Write as _;
use std::path::PathBuf;

use gist_analysis::{predicted_sketches, render_prediction, PredictedSketch};
use gist_bugbase::{all_bugs, BugClass};
use gist_coop::{diagnose_bug, EvalConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A readable line diff: every differing line as `-expected` / `+actual`.
fn line_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if let Some(e) = e {
                let _ = writeln!(out, "  line {:>3} - {e}", i + 1);
            }
            if let Some(a) = a {
                let _ = writeln!(out, "  line {:>3} + {a}", i + 1);
            }
        }
    }
    out
}

/// Renders one program's predictions the way `gist-analyze predict`
/// prints them (the golden file is the CLI's text output).
fn render_all(sketches: &[PredictedSketch]) -> String {
    if sketches.is_empty() {
        return "no predicted sketches (sequential or fully ordered)\n".to_owned();
    }
    sketches.iter().map(render_prediction).collect()
}

#[test]
fn predictions_match_golden_snapshots() {
    let mut failures = Vec::new();
    for bug in all_bugs() {
        let rendered = render_all(&predicted_sketches(&bug.program));
        let path = golden_dir().join(format!("{}.predict", bug.name));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&path, &rendered).expect("write golden file");
            continue;
        }
        let golden = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!(
                    "{}: no golden snapshot at {} ({e}); run with UPDATE_GOLDEN=1",
                    bug.name,
                    path.display()
                ));
                continue;
            }
        };
        if golden != rendered {
            failures.push(format!(
                "{}: predictions differ from {} (UPDATE_GOLDEN=1 to accept):\n{}",
                bug.name,
                path.display(),
                line_diff(&golden, &rendered)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} prediction report(s) changed:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn sequential_bugs_predict_nothing() {
    for bug in all_bugs() {
        if bug.class != BugClass::Sequential {
            continue;
        }
        let sketches = predicted_sketches(&bug.program);
        assert!(
            sketches.is_empty(),
            "{}: a sequential program predicted {} sketch(es) — there \
             are no interleavings to forecast",
            bug.name,
            sketches.len()
        );
    }
}

#[test]
fn concurrency_predictions_match_the_dynamic_sketch_core() {
    let mut failures = Vec::new();
    for bug in all_bugs() {
        if bug.class != BugClass::Concurrency {
            continue;
        }
        let sketches = predicted_sketches(&bug.program);
        assert!(
            !sketches.is_empty(),
            "{}: concurrency bug with no predicted sketch",
            bug.name
        );
        let dynamic = diagnose_bug(&bug, &EvalConfig::default()).sketch;
        // Does the dynamic sketch replay `a` and then `b` on distinct
        // threads, in that order?
        let replays = |a: &gist_analysis::PredictedStep, b: &gist_analysis::PredictedStep| {
            dynamic.steps.iter().enumerate().any(|(x, da)| {
                da.stmt == a.stmt
                    && dynamic.steps[x + 1..]
                        .iter()
                        .any(|db| db.stmt == b.stmt && db.tid != da.tid)
            })
        };
        let matches = sketches.iter().any(|p| {
            let unordered = p.code == "GA010";
            p.steps.iter().enumerate().any(|(i, a)| {
                p.steps[i + 1..].iter().any(|b| {
                    a.thread != b.thread && (replays(a, b) || (unordered && replays(b, a)))
                })
            })
        });
        if !matches {
            failures.push(format!(
                "{}: no predicted cross-thread ordering reappears in the \
                 dynamic sketch ({} prediction(s), {} dynamic steps)",
                bug.name,
                sketches.len(),
                dynamic.steps.len()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} bug(s) failed the dynamic-core match gate:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
