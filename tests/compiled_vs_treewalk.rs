//! Differential test: the precompiled execution engine against the legacy
//! tree-walking interpreter.
//!
//! The compiled engine (`gist_vm::Vm`) replaced the tree-walk interpreter
//! on the hot path; the old engine is kept behind the `treewalk` feature
//! as the semantic oracle. For every bugbase program and a spread of
//! scheduler seeds (including a seed where the bug manifests), both
//! engines must produce identical run results, identical observer event
//! streams, and — through a full `TrackerRuntime` with a planned patch —
//! identical watchpoint hits and decoded traces.

use gist_bugbase::all_bugs;
use gist_slicing::StaticSlicer;
use gist_tracking::{InstrumentationPatch, Planner, RunTrace, TrackerRuntime};
use gist_vm::event::EventLog;
use gist_vm::{RunResult, TreeWalkVm, Vm};

fn planned_patch(bug: &gist_bugbase::BugSpec) -> InstrumentationPatch {
    let (_, report) = bug.find_failure(2_000).expect("bug manifests");
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    planner.plan(slice.prefix(8), 0)
}

/// One engine run: result, observed event stream, and the tracker's view
/// (watchpoint hits, decoded control flow, discovered statements).
fn run_compiled(
    bug: &gist_bugbase::BugSpec,
    patch: &InstrumentationPatch,
    seed: u64,
) -> (RunResult, EventLog, RunTrace) {
    let cfg = bug.vm_config(seed);
    let num_cores = cfg.num_cores;
    let mut log = EventLog::default();
    let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), num_cores);
    let mut vm = Vm::new(&bug.program, cfg);
    let result = vm.run(&mut [&mut log, &mut tracker]);
    (result, log, tracker.finish())
}

fn run_treewalk(
    bug: &gist_bugbase::BugSpec,
    patch: &InstrumentationPatch,
    seed: u64,
) -> (RunResult, EventLog, RunTrace) {
    let cfg = bug.vm_config(seed);
    let num_cores = cfg.num_cores;
    let mut log = EventLog::default();
    let mut tracker = TrackerRuntime::new(&bug.program, patch.clone(), num_cores);
    let mut vm = TreeWalkVm::new(&bug.program, cfg);
    let result = vm.run(&mut [&mut log, &mut tracker]);
    (result, log, tracker.finish())
}

#[test]
fn engines_agree_on_every_bug() {
    for bug in all_bugs() {
        let patch = planned_patch(&bug);
        let (failing_seed, _) = bug.find_failure(2_000).expect("bug manifests");
        // A spread of schedules plus one that provably fails; dedup keeps
        // the failing seed from running twice when it is already below 4.
        let mut seeds = vec![0, 1, 2, 3, failing_seed];
        seeds.dedup();
        for seed in seeds {
            let (res_c, log_c, trace_c) = run_compiled(&bug, &patch, seed);
            let (res_t, log_t, trace_t) = run_treewalk(&bug, &patch, seed);
            // RunResult and RunTrace hold floats/maps-free plain data;
            // Debug rendering is a total, field-exhaustive comparison that
            // keeps this test independent of PartialEq coverage.
            assert_eq!(
                format!("{res_c:?}"),
                format!("{res_t:?}"),
                "{} seed {seed}: run results diverge",
                bug.name
            );
            assert_eq!(
                log_c.events.len(),
                log_t.events.len(),
                "{} seed {seed}: event counts diverge",
                bug.name
            );
            for (i, (ec, et)) in log_c.events.iter().zip(log_t.events.iter()).enumerate() {
                assert_eq!(ec, et, "{} seed {seed}: event {i} diverges", bug.name);
            }
            assert_eq!(
                format!("{:?}", trace_c.hits),
                format!("{:?}", trace_t.hits),
                "{} seed {seed}: watchpoint hits diverge",
                bug.name
            );
            assert_eq!(
                trace_c.decoded, trace_t.decoded,
                "{} seed {seed}: decoded traces diverge",
                bug.name
            );
            assert_eq!(
                trace_c.executed_tracked, trace_t.executed_tracked,
                "{} seed {seed}: executed tracked sets diverge",
                bug.name
            );
            assert_eq!(
                trace_c.discovered, trace_t.discovered,
                "{} seed {seed}: discovered sets diverge",
                bug.name
            );
        }
    }
}
