//! Property test: Intel PT round-trips arbitrary programs.
//!
//! For randomly generated MiniC programs (loops, branches, calls, threads,
//! shared memory), fully tracing a run and decoding the packet streams
//! must reproduce each thread's retired-statement sequence exactly.

use bytes::BytesMut;
use gist_ir::builder::ProgramBuilder;
use gist_ir::{Callee, CmpKind, InstrId, Program};
use gist_pt::packet::TNT_CAPACITY;
use gist_pt::{decoder, Packet, PtConfig, PtDriver, PtTracer};
use gist_vm::event::EventLog;
use gist_vm::{Event, SchedulerKind, Vm, VmConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random but structurally valid program from a seed: a few
/// worker functions with bounded loops and data-dependent branches, plus a
/// main that may spawn them as threads or call them.
fn random_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pb = ProgramBuilder::new("random");
    let g = pb.global("shared", rng.gen_range(0..4));

    let nworkers = rng.gen_range(1..=3u32);
    let mut workers = Vec::new();
    for w in 0..nworkers {
        let name = format!("worker{w}");
        let mut f = pb.function(&name, &["arg"]);
        let arg = f.var("arg");
        let iters = rng.gen_range(1..=4i64);
        let n = f.const_i64("n", iters);
        let head = f.new_block("head");
        let body = f.new_block("body");
        let exit = f.new_block("exit");
        f.br(head);
        f.switch_to(head);
        let c = f.cmp("c", CmpKind::Gt, n.into(), 0.into());
        f.condbr(c.into(), body, exit);
        f.switch_to(body);
        // Random body shape: arithmetic, shared loads/stores, inner branch.
        match rng.gen_range(0..3) {
            0 => {
                let v = f.load("v", g.into());
                let v2 = f.add("v2", v.into(), arg.into());
                f.store(g.into(), v2.into());
            }
            1 => {
                let v = f.load("v", g.into());
                let odd = f.bin("odd", gist_ir::BinKind::And, v.into(), 1.into());
                let t = f.new_block("odd_b");
                let e = f.new_block("even_b");
                let join = f.new_block("join_b");
                f.condbr(odd.into(), t, e);
                f.switch_to(t);
                f.store(g.into(), 7.into());
                f.br(join);
                f.switch_to(e);
                f.store(g.into(), 8.into());
                f.br(join);
                f.switch_to(join);
            }
            _ => {
                let x = f.bin("x", gist_ir::BinKind::Mul, arg.into(), 3.into());
                f.print(&[x.into()]);
            }
        }
        let n2 = f.sub("n2", n.into(), 1.into());
        let n_again = f.var("n");
        let _ = n_again;
        f.store(g.into(), n2.into());
        // Re-bind the loop counter.
        let nn = f.var("n");
        let dec = f.sub("dec", nn.into(), 1.into());
        let nvar = f.var("n");
        let _ = nvar;
        // n = dec
        let _ = f.add("n", dec.into(), 0.into());
        f.br(head);
        f.switch_to(exit);
        f.ret(Some(arg.into()));
        workers.push(f.finish());
    }

    let mut m = pb.function("main", &[]);
    let mut tids = Vec::new();
    for (i, &w) in workers.iter().enumerate() {
        if rng.gen_bool(0.5) {
            let t = m
                .spawn(Some(&format!("t{i}")), Callee::Direct(w), (i as i64).into())
                .expect("dst");
            tids.push(t);
        } else {
            m.call_direct(&format!("r{i}"), w, &[(i as i64).into()]);
        }
    }
    for t in tids {
        m.join(t.into());
    }
    let v = m.load("final", g.into());
    m.print(&[v.into()]);
    m.ret(None);
    m.finish();
    pb.finish().expect("random program is valid")
}

fn check_roundtrip(program_seed: u64, sched_seed: u64) {
    let program = random_program(program_seed);
    let cfg = VmConfig {
        scheduler: SchedulerKind::Random {
            seed: sched_seed,
            preempt: 0.5,
        },
        max_steps: 50_000,
        ..VmConfig::default()
    };
    let mut tracer = PtTracer::new(&program, PtDriver::always_on(), PtConfig::default());
    let mut truth = EventLog::default();
    let mut vm = Vm::new(&program, cfg);
    vm.run(&mut [&mut truth, &mut tracer]);
    tracer.finish();
    let decoded = decoder::decode(&program, &tracer.take_traces()).expect("decodes");
    let mut tids: Vec<u32> = truth
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Retired { tid, .. } => Some(*tid),
            _ => None,
        })
        .collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let want: Vec<_> = truth
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Retired { tid: t, iid, .. } if *t == tid => Some(*iid),
                _ => None,
            })
            .collect();
        let got = decoded.thread_stmts(tid);
        assert_eq!(
            got, want,
            "program {program_seed}, sched {sched_seed}, tid {tid}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pt_roundtrips_random_programs(program_seed in 0u64..5_000, sched_seed in 0u64..1_000) {
        check_roundtrip(program_seed, sched_seed);
    }
}

#[test]
fn pt_roundtrips_known_seeds() {
    for s in 0..30 {
        check_roundtrip(s, s.wrapping_mul(7));
    }
}

/// Strategy producing any single packet, including the markers (PSB, OVF)
/// a real stream interleaves with payload packets.
fn arb_packet() -> impl Strategy<Value = Packet> {
    let ip = || (0u32..100_000).prop_map(InstrId);
    prop_oneof![
        Just(Packet::Psb),
        (0u32..64).prop_map(|tid| Packet::Pip { tid }),
        ip().prop_map(|ip| Packet::Pge { ip }),
        ip().prop_map(|ip| Packet::Pgd { ip }),
        proptest::collection::vec((0u32..2).prop_map(|b| b == 1), 1..TNT_CAPACITY + 1)
            .prop_map(|bits| Packet::Tnt { bits }),
        ip().prop_map(|ip| Packet::Tip { ip }),
        ip().prop_map(|ip| Packet::Fup { ip }),
        Just(Packet::Ovf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Byte-level property: ANY packet sequence — arbitrary ordering,
    /// PSB resync points and OVF markers anywhere in the stream —
    /// encodes to exactly the modeled sizes and decodes back verbatim.
    #[test]
    fn packet_streams_roundtrip(packets in proptest::collection::vec(arb_packet(), 0..200)) {
        let mut buf = BytesMut::new();
        let mut modeled = 0usize;
        for p in &packets {
            p.encode(&mut buf);
            modeled += p.encoded_len();
        }
        prop_assert_eq!(buf.len(), modeled, "encoded_len must match encoding");
        let decoded = Packet::decode_all(&buf);
        prop_assert_eq!(decoded.as_ref(), Ok(&packets));
    }
}

/// OVF semantics end to end: with a buffer far too small for the trace,
/// the tracer stops on full with a single OVF marker, and the decoded
/// per-thread statement sequences are exact prefixes of the true ones.
#[test]
fn overflowed_trace_decodes_to_prefixes() {
    for seed in 0..10u64 {
        let program = random_program(seed);
        let cfg = VmConfig {
            scheduler: SchedulerKind::Random {
                seed: seed.wrapping_mul(13).wrapping_add(1),
                preempt: 0.5,
            },
            max_steps: 50_000,
            ..VmConfig::default()
        };
        let mut tracer = PtTracer::new(
            &program,
            PtDriver::always_on(),
            PtConfig {
                num_cores: 1,
                buffer_capacity: 96,
            },
        );
        let mut truth = EventLog::default();
        let mut vm = Vm::new(&program, cfg);
        vm.run(&mut [&mut truth, &mut tracer]);
        tracer.finish();
        let traces = tracer.take_traces();
        let per_stream_ovf: Vec<usize> = traces
            .iter()
            .map(|t| {
                Packet::decode_all(t)
                    .expect("stream decodes")
                    .iter()
                    .filter(|p| matches!(p, Packet::Ovf))
                    .count()
            })
            .collect();
        for (core, &n) in per_stream_ovf.iter().enumerate() {
            assert!(
                n <= 1,
                "seed {seed}, core {core}: stop-on-full emits at most one OVF per stream"
            );
        }
        let decoded = decoder::decode(&program, &traces).expect("decodes");
        let mut tids: Vec<u32> = truth
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Retired { tid, .. } => Some(*tid),
                _ => None,
            })
            .collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let want: Vec<_> = truth
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Retired { tid: t, iid, .. } if *t == tid => Some(*iid),
                    _ => None,
                })
                .collect();
            let got = decoded.thread_stmts(tid);
            assert!(
                got.len() <= want.len() && got == want[..got.len()],
                "seed {seed}, tid {tid}: decoded sequence must be a prefix \
                 of the true sequence (got {} stmts, want {})",
                got.len(),
                want.len()
            );
        }
        if decoded.overflowed {
            assert!(
                per_stream_ovf.iter().sum::<usize>() >= 1,
                "seed {seed}: decoder reports overflow but no stream carries OVF"
            );
        }
    }
}
