//! Streaming-drain contract, end to end: cursored incremental drains
//! ([`gist_obs::journal::drain_since`]) deliver every event **exactly
//! once** — no duplicates, no drops — while producers are still running,
//! and the live tail of a real diagnosis sees the same journal a batch
//! drain would.
//!
//! Three phases, one `#[test]`:
//!
//! 1. Four producer threads hammer the journal while the main thread
//!    tails it with a cursor; the union of all chunks is exactly the
//!    recorded seq set.
//! 2. A deliberately tiny ring overwrites most of a burst: the drain
//!    reports the loss precisely (`events_overwritten`, `oldest_seq`) and
//!    `gist-trace summary` surfaces it as a gap warning.
//! 3. `LiveTail` follows a real `diagnose_bug` on another thread
//!    (the `gist-trace follow` machinery); the streamed journal answers a
//!    promotion-provenance query mid-diagnosis shape and, re-rendered,
//!    is byte-identical to a clean same-seed batch drain.
//!
//! One `#[test]` in its own integration binary: the journal ring and
//! cursor generation are process-global, so this cannot share a process
//! with other event-producing tests.

use std::collections::BTreeSet;

use gist_bench::trace_tool::{Journal, LiveTail};
use gist_obs::journal::{self, DEFAULT_RING_CAPACITY};
use gist_obs::EventKind;

/// Phase 1: concurrent producers vs. a tailing cursor — exactly-once.
fn concurrent_tail_is_exactly_once() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    journal::reset();
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut delivered = 0u64;
    let mut cursor = journal::Cursor::default();
    let mut overwritten = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        journal::record(EventKind::RunStarted {
                            run: t * PER_THREAD + i,
                            seed: t,
                        });
                    }
                    journal::flush_local();
                })
            })
            .collect();
        // Tail while producers run; each chunk must be all-new seqs.
        loop {
            let done = handles.iter().all(|h| h.is_finished());
            let chunk = journal::drain_since(cursor);
            cursor = chunk.cursor;
            overwritten += chunk.overwritten;
            for e in &chunk.events {
                assert!(seen.insert(e.seq), "seq #{} delivered twice", e.seq);
                delivered += 1;
            }
            if done {
                break;
            }
            std::thread::yield_now();
        }
    });
    // Producer threads have been joined by the scope; their exit-time TLS
    // flushes are ordered before this final poll.
    let chunk = journal::drain_since(cursor);
    overwritten += chunk.overwritten;
    for e in &chunk.events {
        assert!(seen.insert(e.seq), "seq #{} delivered twice", e.seq);
        delivered += 1;
    }
    assert_eq!(overwritten, 0, "ring must not overflow in this phase");
    assert_eq!(delivered, THREADS * PER_THREAD, "every event delivered");
    assert_eq!(
        (seen.iter().next(), seen.iter().next_back()),
        (Some(&1), Some(&(THREADS * PER_THREAD))),
        "delivered seqs are exactly 1..=N"
    );
}

/// Phase 2: a tiny ring loses events loudly, not silently.
fn overwrites_are_accounted_and_warned() {
    const CAPACITY: usize = 256;
    const RECORDED: u64 = 1_000;
    journal::set_ring_capacity(CAPACITY);
    journal::reset();
    for i in 0..RECORDED {
        journal::record(EventKind::RunStarted { run: i, seed: 0 });
    }
    journal::flush_local();
    let (events, stats) = journal::drain_with_stats();
    // Restore the shared ring before asserting (capacity survives reset).
    journal::set_ring_capacity(DEFAULT_RING_CAPACITY);
    journal::reset();
    assert_eq!(events.len(), CAPACITY, "ring retains exactly its capacity");
    assert_eq!(
        stats.events_overwritten,
        RECORDED - CAPACITY as u64,
        "every overwrite is counted"
    );
    assert_eq!(
        stats.oldest_seq,
        RECORDED - CAPACITY as u64 + 1,
        "oldest retained seq names the survivor after the loss"
    );
    assert_eq!(
        events.first().map(|e| e.seq),
        Some(stats.oldest_seq),
        "drained events start at oldest_seq"
    );
    // The loss must be visible to journal consumers: summary leads with a
    // gap warning naming the overwritten count.
    let snapshot = Journal::load_bytes(&journal::to_binary(&events, &stats)).expect("binary loads");
    let summary = snapshot.summary_text();
    assert!(
        summary.contains("WARNING") && summary.contains("744 events overwritten"),
        "summary must warn about the gap, got:\n{summary}"
    );
}

/// Phase 3: live-tail a real diagnosis; the stream answers provenance
/// queries and matches a clean batch drain byte-for-byte.
fn live_tail_of_a_diagnosis_matches_batch_drain() {
    let bug = gist_bugbase::bug_by_name("pbzip2-1").expect("pbzip2-1 in bugbase");
    journal::reset();
    let cfg = gist_coop::EvalConfig::default();
    let handle = {
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            let bug = gist_bugbase::bug_by_name("pbzip2-1").expect("pbzip2-1 in bugbase");
            gist_coop::diagnose_bug(&bug, &cfg)
        })
    };
    let mut tail = LiveTail::new();
    loop {
        // Liveness is sampled *before* the poll so a flush racing the
        // thread's exit lands in the next turn or the final poll below.
        let finished = handle.is_finished();
        tail.poll();
        if finished {
            break;
        }
        std::thread::yield_now();
    }
    handle.join().expect("diagnosis thread");
    tail.poll();
    assert_eq!(tail.overwritten, 0, "follow must not miss events");
    let seqs: BTreeSet<u64> = tail.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs.len(), tail.events.len(), "no event delivered twice");
    assert!(!tail.events.is_empty(), "diagnosis journals events");

    // The streamed journal answers the Lumos-style question mid-tail
    // consumers ask: which watch hit promoted this statement?
    let streamed = tail.journal();
    let promotions = streamed.query_promotions(None);
    assert!(
        !promotions.is_empty(),
        "pbzip2-1 diagnosis promotes at least one statement"
    );
    assert!(
        promotions.iter().any(|l| l.contains("watch.hit")),
        "at least one promotion resolves to its discovering watch hit:\n{}",
        promotions.join("\n")
    );

    // Exactly-once, proven against ground truth: a clean same-seed
    // diagnosis batch-drained in one go renders the same JSONL.
    journal::reset();
    gist_coop::diagnose_bug(&bug, &cfg);
    let clean = journal::to_events(&journal::drain());
    assert_eq!(
        gist_bench::trace_tool::jsonl_text(&streamed),
        gist_bench::trace_tool::jsonl_text(&Journal::from_events(clean)),
        "streamed journal must equal a clean batch drain byte-for-byte"
    );
}

#[test]
fn streaming_drains_never_duplicate_or_drop() {
    if cfg!(feature = "metrics-off") {
        // The recorder compiles to no-ops: streaming must deliver nothing.
        journal::reset();
        journal::record(EventKind::RunStarted { run: 1, seed: 1 });
        journal::flush_local();
        let chunk = journal::drain_since(journal::Cursor::default());
        assert!(chunk.events.is_empty(), "metrics-off journals nothing");
        return;
    }
    concurrent_tail_is_exactly_once();
    overwrites_are_accounted_and_warned();
    live_tail_of_a_diagnosis_matches_batch_drain();
}
