//! The bench report's determinism contract: the `deterministic` section
//! (per-bug rows + counter/histogram snapshot) must be byte-identical
//! across same-seed runs. Timers are wall-clock and live in the separate
//! `timing` section, which is deliberately not compared.
//!
//! One `#[test]` in its own integration binary: the bench resets and reads
//! the process-global metrics registry, so it cannot share a process with
//! other metric-producing tests.

use gist_bench::bench_report;

#[test]
fn deterministic_section_is_byte_identical_across_runs() {
    // A cheap subset (one single- and one multi-iteration diagnosis) keeps
    // the double full-pipeline run affordable in debug builds; `repro bench`
    // exercises the full bugbase.
    let subset = ["pbzip2-1", "curl-965", "apache-45605"];
    let (first, evals) = bench_report::run(Some(&subset));
    assert_eq!(evals.len(), subset.len(), "all subset bugs diagnosed");
    let (second, _) = bench_report::run(Some(&subset));
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "counters and histograms must be identical under fixed seeds"
    );
}
