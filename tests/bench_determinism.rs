//! The bench report's determinism contract: the `deterministic` section
//! (per-bug rows + counter/histogram snapshot) must be byte-identical
//! across same-seed runs. Timers and throughput are wall-clock derived and
//! live in separate sections, which are deliberately not compared — but
//! the `throughput` section's *shape* is part of the report schema, so its
//! keys are asserted here.
//!
//! One `#[test]` in its own integration binary: the bench resets and reads
//! the process-global metrics registry, so it cannot share a process with
//! other metric-producing tests.

use gist_bench::bench_report::{self, throughput_batches};
use gist_obs::json::Json;

fn obj_get<'a>(v: &'a Json, key: &str) -> Option<&'a Json> {
    match v {
        Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn deterministic_section_is_byte_identical_across_runs() {
    // A cheap subset (one single- and one multi-iteration diagnosis) keeps
    // the double full-pipeline run affordable in debug builds; `repro bench`
    // exercises the full bugbase.
    let subset = ["pbzip2-1", "curl-965", "apache-45605"];
    let (first, evals) = bench_report::run(Some(&subset));
    assert_eq!(evals.len(), subset.len(), "all subset bugs diagnosed");
    let (second, _) = bench_report::run(Some(&subset));
    assert_eq!(
        first.deterministic_json(),
        second.deterministic_json(),
        "counters and histograms must be identical under fixed seeds"
    );
    // The flight-recorder journal carries no wall-clock fields and is
    // drained before the (parallel) throughput section, so it is part of
    // the determinism contract: the binary journal AND its JSONL export
    // must both be byte-identical across same-seed runs.
    assert_eq!(
        first.journal_binary, second.journal_binary,
        "deterministic binary journal must be byte-identical under fixed seeds"
    );
    assert_eq!(
        first.journal, second.journal,
        "deterministic JSONL export must be byte-identical under fixed seeds"
    );
    if cfg!(feature = "metrics-off") {
        assert!(first.journal.is_empty(), "metrics-off journals nothing");
    } else {
        assert!(!first.journal.is_empty(), "diagnoses journal events");
        assert!(
            first.journal_binary.len() * 2 < first.journal.len(),
            "binary journal ({} B) should be far smaller than JSONL ({} B)",
            first.journal_binary.len(),
            first.journal.len()
        );
    }

    // The report must carry a `throughput` section with headline rates and
    // one batch-scaling row per arm.
    let report = first.to_value();
    let throughput = obj_get(&report, "throughput").expect("report has a throughput section");
    for key in ["runs_per_arm", "runs_per_sec", "instrs_per_sec"] {
        assert!(
            obj_get(throughput, key).is_some(),
            "throughput section has `{key}`"
        );
    }
    let scaling = obj_get(throughput, "batch_scaling").expect("throughput has `batch_scaling`");
    let batches = throughput_batches();
    assert_eq!(batches[0], 1, "arms start at the sequential baseline");
    assert!(
        batches.windows(2).all(|w| w[0] < w[1]),
        "arms are strictly increasing: {batches:?}"
    );
    for batch in batches {
        let arm = obj_get(scaling, &batch.to_string())
            .unwrap_or_else(|| panic!("batch_scaling has a batch={batch} arm"));
        for key in [
            "runs_per_sec",
            "instrs_per_sec",
            "speedup_vs_batch1",
            "pool_workers",
            "contention",
        ] {
            assert!(obj_get(arm, key).is_some(), "batch={batch} arm has `{key}`");
        }
        match obj_get(arm, "runs_per_sec") {
            Some(Json::F64(r)) => assert!(*r > 0.0, "batch={batch} measured a positive rate"),
            other => panic!("batch={batch} runs_per_sec is an F64, got {other:?}"),
        }
    }

    // The timing section reports the journal's overhead (the flight
    // recorder must be *visibly* cheap, not assumed cheap).
    let timing = obj_get(&report, "timing").expect("report has a timing section");
    let journal = obj_get(timing, "journal").expect("timing has a `journal` overhead entry");
    for key in [
        "events_recorded",
        "events_overwritten",
        "oldest_seq",
        "binary_bytes",
        "jsonl_bytes",
        "encode_ms",
        "drain_ms",
        "export_ms",
        "overhead_ratio",
    ] {
        assert!(
            obj_get(journal, key).is_some(),
            "journal overhead has `{key}`"
        );
    }
    match obj_get(journal, "events_overwritten") {
        Some(Json::U64(n)) => assert_eq!(*n, 0, "the bench must not overflow the ring"),
        other => panic!("events_overwritten is a U64, got {other:?}"),
    }
    match obj_get(journal, "events_recorded") {
        Some(Json::U64(n)) => {
            if cfg!(feature = "metrics-off") {
                assert_eq!(*n, 0, "metrics-off records no events");
            } else {
                assert!(*n > 0, "bench diagnoses record journal events");
            }
        }
        other => panic!("events_recorded is a U64, got {other:?}"),
    }
}
