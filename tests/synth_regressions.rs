//! Replays every archived synthetic-bugbase regression fixture.
//!
//! `tests/golden/synth-regressions/` holds `<name>.ir` + `<name>.truth`
//! pairs: programs that once violated a generator property, shrunk to
//! minimal scaffolding by `synth_prop.rs`'s failure handler (plus a few
//! committed exemplars so the replay path itself stays exercised). Once
//! the underlying bug is fixed and the pair committed, this suite keeps
//! every fixture honest forever: the program must parse, pass the
//! verifier, carry the lint finding its truth records, and manifest the
//! recorded failure.
//!
//! Regenerate the exemplar fixtures after an intentional generator
//! change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gist-bench --test synth_regressions
//! ```

use std::path::PathBuf;

use gist_analysis::ground_truth as gt;
use gist_bugbase::synth::{
    self, find_failure_in, GroundTruth, Model, PatternKind, SynthBug, SYNTH_FILE,
};
use gist_ir::parser::parse_program;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/synth-regressions")
}

/// The committed exemplars: shrunk-to-minimal bugs regenerated (and
/// checked for drift) by [`exemplar_fixtures_are_current`]. One per
/// failure-mechanism group so the replay path exercises an assert, a
/// memory-lifetime failure, and a deadlock.
const EXEMPLARS: &[(u64, PatternKind)] = &[
    (3, PatternKind::AtomicityRwr),
    (11, PatternKind::UseAfterFree),
    (2, PatternKind::Deadlock),
];

fn exemplar_bug(seed: u64, pattern: PatternKind) -> SynthBug {
    let model = Model::with_pattern(seed, pattern);
    let shrunk = synth::shrink(&model, |b: &SynthBug| b.find_failure(100).is_some());
    SynthBug::from_model(shrunk)
}

#[test]
fn exemplar_fixtures_are_current() {
    let dir = fixture_dir();
    for &(seed, pattern) in EXEMPLARS {
        let bug = exemplar_bug(seed, pattern);
        let ir_path = dir.join(format!("{}.ir", bug.name));
        let truth_path = dir.join(format!("{}.truth", bug.name));
        let truth_text = format!(
            "# exemplar: shrunk {:?} seed {seed}\n{}",
            pattern,
            bug.truth.render()
        );
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(&dir).expect("create fixture dir");
            std::fs::write(&ir_path, bug.text()).expect("write .ir");
            std::fs::write(&truth_path, truth_text).expect("write .truth");
            continue;
        }
        let ir = std::fs::read_to_string(&ir_path).unwrap_or_else(|e| {
            panic!(
                "{}: missing exemplar {} ({e}); run with UPDATE_GOLDEN=1",
                bug.name,
                ir_path.display()
            )
        });
        assert_eq!(
            ir,
            bug.text(),
            "{}: exemplar drifted from the generator (UPDATE_GOLDEN=1 to accept)",
            bug.name
        );
        let truth = std::fs::read_to_string(&truth_path).expect("truth exists beside .ir");
        assert_eq!(
            truth, truth_text,
            "{}: exemplar truth drifted (UPDATE_GOLDEN=1 to accept)",
            bug.name
        );
    }
}

#[test]
fn every_archived_fixture_replays_clean() {
    let dir = fixture_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("fixture dir {} unreadable: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.extension()? == "ir")
                .then(|| path.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    names.sort();
    assert!(
        !names.is_empty(),
        "no fixtures in {} — the committed exemplars are gone",
        dir.display()
    );

    for name in names {
        let ir = std::fs::read_to_string(dir.join(format!("{name}.ir"))).expect("read .ir");
        let truth_text = std::fs::read_to_string(dir.join(format!("{name}.truth")))
            .unwrap_or_else(|e| panic!("{name}: fixture has no .truth ({e})"));
        let program = parse_program(&name, &ir)
            .unwrap_or_else(|e| panic!("{name}: fixture does not parse: {e:?}"));
        let truth = GroundTruth::parse(&truth_text)
            .unwrap_or_else(|e| panic!("{name}: fixture truth does not parse: {e}"));

        let verify = gist_analysis::verify(&program);
        assert!(
            !gist_analysis::has_errors(&verify),
            "{name}: fixture no longer passes the verifier: {verify:?}"
        );

        match truth.code() {
            None => {
                assert!(
                    gt::lint_all(&program).is_empty(),
                    "{name}: control fixture has lint findings"
                );
            }
            Some(code) => {
                let diags = gt::lint_all(&program);
                let on_lines =
                    gt::findings_on_lines(&program, &diags, code, SYNTH_FILE, &truth.static_lines);
                assert!(
                    !on_lines.is_empty(),
                    "{name}: no {code} finding on lines {:?} (codes: {:?})",
                    truth.static_lines,
                    diags.iter().map(|d| d.code).collect::<Vec<_>>()
                );
            }
        }

        if truth.expected.is_some() {
            assert!(
                find_failure_in(&program, &truth, 400).is_some(),
                "{name}: fixture no longer manifests its recorded failure"
            );
        }

        for &line in truth
            .root_cause_lines
            .iter()
            .chain(&truth.static_lines)
            .chain(&truth.ideal_lines)
        {
            assert!(
                !synth::stmts_at(&program, line).is_empty(),
                "{name}: truth references line {line} with no statements"
            );
        }
    }
}
