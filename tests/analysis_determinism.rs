//! `gist-analyze` output is deterministic: repeated runs over the same
//! inputs produce byte-identical stdout, in every mode (default and lint
//! pipelines, text and `--json` rendering).
//!
//! Determinism is what makes the golden-lint gate and the CI findings
//! artifact meaningful — a nondeterministically ordered report would churn
//! on every run.

use std::process::Command;

fn run(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_gist-analyze"))
        .args(args)
        .output()
        .expect("spawn gist-analyze");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.code().unwrap_or(-1),
    )
}

fn assert_repeatable(args: &[&str]) -> String {
    let (first, code1) = run(args);
    let (second, code2) = run(args);
    assert_eq!(code1, code2, "{args:?}: exit code changed between runs");
    assert_eq!(
        first, second,
        "{args:?}: output differs between identical runs"
    );
    assert!(!first.is_empty(), "{args:?}: produced no output");
    first
}

#[test]
fn default_pipeline_text_output_is_byte_identical() {
    let out = assert_repeatable(&["--bugbase"]);
    assert!(out.contains("=== apache-45605"), "per-bug headers present");
}

#[test]
fn lint_pipeline_text_output_is_byte_identical() {
    let out = assert_repeatable(&["lint", "--bugbase"]);
    assert!(out.contains("GA020"), "lint suite ran: UAF finding present");
}

#[test]
fn json_output_is_byte_identical_and_parses() {
    for args in [
        &["--json", "--bugbase"][..],
        &["lint", "--json", "--bugbase"][..],
    ] {
        let out = assert_repeatable(args);
        let parsed = gist_obs::json::Json::parse(&out)
            .unwrap_or_else(|e| panic!("{args:?}: --json output does not parse: {e}"));
        match parsed {
            gist_obs::json::Json::Arr(programs) => {
                assert_eq!(
                    programs.len(),
                    gist_bugbase::all_bugs().len(),
                    "{args:?}: one JSON object per bugbase program"
                );
            }
            other => panic!("{args:?}: expected a top-level array, got {other:?}"),
        }
    }
}
