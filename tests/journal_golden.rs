//! Flight-recorder journal contract, in one test binary:
//!
//! 1. Same-seed determinism: two diagnoses of the same bug produce
//!    byte-identical journals — the canonical *binary* journal and its
//!    JSONL export alike (the journal carries no wall-clock fields — only
//!    logical seq-nos, trace ids, and typed payloads).
//! 2. Lossless export: the binary journal decodes back to exactly the
//!    drained records, and the JSONL rendered from the decoded records is
//!    byte-identical to the JSONL rendered from the originals.
//! 3. Golden snapshot: the pbzip2 journal's deterministic digest (kind
//!    counts, trace structure, provenance chains resolved to kinds) is
//!    computed over the **binary-decoded** journal and pinned under
//!    `tests/golden/pbzip2-1.journal` — the golden file predates the
//!    binary format, so a match proves the binary path changes nothing.
//! 4. Provenance coverage: every step of every bugbase sketch has a
//!    non-empty provenance chain whose seq-nos all resolve inside the
//!    diagnosis's own journal, and `gist-trace explain` (the same
//!    `explain_step` path) renders each of them.
//!
//! To accept intentional journal-shape changes:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gist-bench --test journal_golden
//! ```
//!
//! One `#[test]` in its own integration binary: the journal is a
//! process-global sink, so this cannot share a process with other
//! event-producing tests.

use std::fmt::Write as _;
use std::path::PathBuf;

use gist_bench::trace_tool::Journal;
use gist_bugbase::{all_bugs, bug_by_name, BugSpec};
use gist_coop::{diagnose_bug, BugEvaluation, EvalConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A readable line diff: every differing line as `-expected` / `+actual`.
fn line_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if let Some(e) = e {
                let _ = writeln!(out, "  line {:>3} - {e}", i + 1);
            }
            if let Some(a) = a {
                let _ = writeln!(out, "  line {:>3} + {a}", i + 1);
            }
        }
    }
    out
}

/// Diagnoses `bug` against a freshly reset journal and returns the
/// evaluation together with the drained journal: binary bytes, JSONL
/// export, and the parsed view — the parsed view is reconstructed **from
/// the binary bytes**, so every downstream assertion also exercises the
/// wire decode path.
fn diagnose_journaled(bug: &BugSpec) -> (BugEvaluation, Vec<u8>, String, Journal) {
    gist_obs::reset();
    let eval = diagnose_bug(bug, &EvalConfig::default());
    let (events, stats) = gist_obs::journal::drain_with_stats();
    assert_eq!(stats.events_overwritten, 0, "{}: ring overflowed", bug.name);
    let binary = gist_obs::journal::to_binary(&events, &stats);
    let jsonl = gist_obs::journal::to_jsonl(&events);
    // Lossless export proof: binary -> records -> JSONL must equal the
    // JSONL rendered straight from the drained records.
    let (decoded, decoded_stats) =
        gist_obs::journal::parse_binary(&binary).expect("binary journal parses");
    assert_eq!(decoded, events, "{}: binary decode is lossless", bug.name);
    assert_eq!(decoded_stats, stats, "{}: meta frame round-trips", bug.name);
    assert_eq!(
        gist_obs::journal::to_jsonl(&decoded),
        jsonl,
        "{}: JSONL exported from the binary journal is byte-identical",
        bug.name
    );
    let journal = Journal::load_bytes(&binary).expect("binary journal loads");
    (eval, binary, jsonl, journal)
}

#[test]
fn journal_is_deterministic_and_every_sketch_step_explains() {
    let pbzip2 = bug_by_name("pbzip2-1").expect("pbzip2-1 in bugbase");

    if cfg!(feature = "metrics-off") {
        // The whole recorder compiles to no-ops; the only contract left is
        // that nothing is journaled.
        let (_, _, jsonl, _) = diagnose_journaled(&pbzip2);
        assert!(jsonl.is_empty(), "metrics-off journals nothing");
        return;
    }

    // 1. Byte-identical journals across same-seed runs: binary and JSONL.
    let (_, first_binary, first_jsonl, journal) = diagnose_journaled(&pbzip2);
    let (_, second_binary, second_jsonl, _) = diagnose_journaled(&pbzip2);
    assert!(!first_jsonl.is_empty(), "diagnosis journals events");
    assert_eq!(
        first_binary, second_binary,
        "binary journal must be byte-identical across same-seed diagnoses"
    );
    assert_eq!(
        first_jsonl, second_jsonl,
        "JSONL export must be byte-identical across same-seed diagnoses"
    );

    // 2. Golden digest snapshot for pbzip2-1, computed over the journal
    // reconstructed from the binary bytes (`diagnose_journaled` loads the
    // parsed view via `Journal::load_bytes`). The golden file predates
    // the binary format: matching it proves the wire round-trip preserved
    // the journal exactly.
    let digest = journal.digest();
    let path = golden_dir().join("pbzip2-1.journal");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &digest).expect("write golden journal digest");
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "no golden journal digest at {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        assert!(
            golden == digest,
            "pbzip2-1 journal digest differs from {} (UPDATE_GOLDEN=1 to accept):\n{}",
            path.display(),
            line_diff(&golden, &digest)
        );
    }

    // 3. Every step of every bugbase sketch has a non-empty provenance
    // chain that resolves inside its own journal and explains.
    for bug in all_bugs() {
        let (eval, _, _, journal) = diagnose_journaled(&bug);
        let label = format!("Failure Sketch for {}", bug.display);
        assert!(
            journal.trace_by_label(&label).is_some(),
            "{}: journal has a trace labeled {label:?}",
            bug.name
        );
        assert!(
            !eval.sketch.steps.is_empty(),
            "{}: sketch has steps",
            bug.name
        );
        for step in &eval.sketch.steps {
            assert!(
                !step.provenance.is_empty(),
                "{} step {}: provenance chain must not be empty",
                bug.name,
                step.step
            );
            for &seq in &step.provenance {
                assert!(
                    journal.event_by_seq(seq).is_some(),
                    "{} step {}: provenance seq #{seq} not in journal",
                    bug.name,
                    step.step
                );
            }
            let lines = journal
                .explain_step(&label, step.step as u64)
                .unwrap_or_else(|e| panic!("{} step {}: explain failed: {e}", bug.name, step.step));
            // The step line plus at least one `<-` evidence line, none
            // of which may be unresolved.
            assert!(
                lines.len() >= 2,
                "{} step {}: {lines:?}",
                bug.name,
                step.step
            );
            assert!(
                !lines.iter().any(|l| l.contains("<unresolved>")),
                "{} step {}: {lines:?}",
                bug.name,
                step.step
            );
        }
    }
}
