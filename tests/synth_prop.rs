//! Property suite over the synthetic bugbase: every seed in the u64
//! space must yield a verifier-clean program whose injected root cause
//! the static lints flag and the dynamic AsT loop recovers.
//!
//! The vendored proptest has no shrinking, so failures go through the
//! generator's own model shrinker ([`gist_bugbase::synth::shrink`]):
//! scaffold elements are deleted while the violated property keeps
//! failing, and the minimal program + ground truth are archived under
//! `tests/golden/synth-regressions/` before the test panics. Committing
//! the pair turns the repro into a permanent regression test
//! (`synth_regressions.rs` replays every archived fixture).

use std::path::PathBuf;

use gist_analysis::ground_truth as gt;
use gist_bugbase::synth::{self, generate, PatternKind, SynthBug};
use gist_coop::{diagnose_synth, EvalConfig};
use proptest::prelude::*;

/// Where shrunk failing programs are archived.
fn regression_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/synth-regressions")
}

/// Shrinks the failing bug's model while `still_fails` holds, archives
/// the minimal program + truth, and returns the panic message.
fn archive_shrunk(bug: &SynthBug, why: &str, still_fails: impl FnMut(&SynthBug) -> bool) -> String {
    let minimal = SynthBug::from_model(synth::shrink(&bug.model, still_fails));
    let dir = regression_dir();
    let _ = std::fs::create_dir_all(&dir);
    let ir_path = dir.join(format!("{}.ir", minimal.name));
    let truth_path = dir.join(format!("{}.truth", minimal.name));
    let truth_text = format!("# {why}\n{}", minimal.truth.render());
    let io = std::fs::write(&ir_path, minimal.text())
        .and_then(|()| std::fs::write(&truth_path, truth_text));
    match io {
        Ok(()) => format!(
            "{}: {why}; shrunk repro archived at {} (commit it to pin the regression)",
            bug.name,
            ir_path.display()
        ),
        Err(e) => format!(
            "{}: {why}; archiving the shrunk repro failed ({e}); model: {:?}",
            bug.name, minimal.model
        ),
    }
}

/// The verifier property on one bug (shared by the checker and the
/// shrink predicate so the repro shrinks against the same oracle).
fn verifier_rejects(bug: &SynthBug) -> bool {
    gist_analysis::has_errors(&gist_analysis::verify(&bug.program))
}

/// The static-lint property: the injected code is reported exactly once
/// and references the injected lines; patterns with a predicted-sketch
/// form also show up in `predict` output with the same code.
fn static_miss(bug: &SynthBug) -> Option<String> {
    let code = bug.truth.code().expect("injected patterns carry a code");
    let diags = gt::lint_all(&bug.program);
    let hist = gt::code_histogram(&diags);
    if hist.get(code) != Some(&1) {
        return Some(format!("expected exactly one {code}, histogram {hist:?}"));
    }
    let on_lines = gt::findings_on_lines(
        &bug.program,
        &diags,
        code,
        synth::SYNTH_FILE,
        &bug.truth.static_lines,
    );
    if on_lines.is_empty() {
        return Some(format!(
            "{code} finding does not reference injected lines {:?}",
            bug.truth.static_lines
        ));
    }
    if let Some(label) = bug.truth.pattern.av_label() {
        if !on_lines
            .iter()
            .any(|d| d.message.contains(&format!("({label})")))
        {
            return Some(format!("GA022 finding does not carry AVIO label ({label})"));
        }
    }
    let predicted = gist_bench::synth_report::predicted_code(bug.truth.pattern);
    if let Some(pcode) = predicted {
        if !gt::predictions(&bug.program)
            .iter()
            .any(|p| p.code == pcode)
        {
            return Some(format!("no predicted sketch with code {pcode}"));
        }
    }
    None
}

/// The dynamic property: the failure manifests, the converged sketch
/// covers every root-cause line, and (for patterns whose key accesses
/// the sketch timeline orders deterministically) the injected ordering
/// is reproduced exactly.
fn dynamic_miss(bug: &SynthBug) -> Option<String> {
    let eval = diagnose_synth(bug, &EvalConfig::default());
    if !eval.manifested {
        return Some("injected failure never manifested".to_owned());
    }
    if !eval.recovered {
        return Some(format!(
            "sketch missed the root cause (overall {:.1}%):\n{}",
            eval.overall,
            eval.sketch.map(|s| s.render()).unwrap_or_default()
        ));
    }
    if bug.truth.order_lines.len() >= 2
        && bug.truth.pattern != PatternKind::OrderViolation
        && eval.ordering < 100.0
    {
        return Some(format!(
            "sketch reproduces the root cause but not its ordering (A_O {:.1}%)",
            eval.ordering
        ));
    }
    None
}

/// Case counts: the dynamic property runs the full AsT pipeline per
/// case, so it gets the smallest budget (debug builds are ~20x slower).
const VERIFY_CASES: u32 = if cfg!(debug_assertions) { 48 } else { 192 };
const STATIC_CASES: u32 = if cfg!(debug_assertions) { 24 } else { 96 };
const DYNAMIC_CASES: u32 = if cfg!(debug_assertions) { 6 } else { 48 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(VERIFY_CASES))]

    /// (a) Every generated program passes the IR verifier.
    #[test]
    fn every_generated_program_passes_the_verifier(seed in 0u64..u64::MAX) {
        let bug = generate(seed);
        if verifier_rejects(&bug) {
            let msg = archive_shrunk(&bug, "verifier rejects generated program", verifier_rejects);
            prop_assert!(false, "{}", msg);
        }
        let control = synth::generate_control(seed);
        prop_assert!(
            !verifier_rejects(&control),
            "{}: verifier rejects control",
            control.name
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(STATIC_CASES))]

    /// (c) `gist-analyze lint`/`predict` flag the injected pattern with
    /// the matching GA0xx code on the injected lines.
    #[test]
    fn static_analyses_flag_the_injected_pattern(seed in 0u64..u64::MAX) {
        let bug = generate(seed);
        if let Some(why) = static_miss(&bug) {
            let msg = archive_shrunk(
                &bug,
                &format!("static conformance: {why}"),
                |b| static_miss(b).is_some(),
            );
            prop_assert!(false, "{}", msg);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(DYNAMIC_CASES))]

    /// (b) The converged dynamic sketch contains the injected root-cause
    /// statements and their ordering.
    #[test]
    fn dynamic_diagnosis_recovers_the_injected_root_cause(seed in 0u64..u64::MAX) {
        let bug = generate(seed);
        if let Some(why) = dynamic_miss(&bug) {
            let msg = archive_shrunk(
                &bug,
                &format!("dynamic recovery: {why}"),
                |b| dynamic_miss(b).is_some(),
            );
            prop_assert!(false, "{}", msg);
        }
    }
}
