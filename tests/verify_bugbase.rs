//! The IR verifier over every bugbase program (and the malformations it
//! must catch). The shipping programs must all verify cleanly — warnings
//! are fine, errors are not — while seeded malformation classes must each
//! be rejected with the right diagnostic code.

use gist_analysis::{default_passes, has_errors, render_report, verify, verify_source};
use gist_bugbase::all_bugs;

#[test]
fn every_bugbase_program_verifies() {
    for bug in all_bugs() {
        let diags = verify(&bug.program);
        assert!(
            !has_errors(&diags),
            "{}:\n{}",
            bug.name,
            render_report(Some(&bug.program), &diags)
        );
    }
}

#[test]
fn default_pass_pipeline_reports_no_errors_on_bugbase() {
    let pm = default_passes();
    for bug in all_bugs() {
        let diags = pm.run(&bug.program);
        assert!(
            !has_errors(&diags),
            "{}:\n{}",
            bug.name,
            render_report(Some(&bug.program), &diags)
        );
        // The race lint fires on the concurrency bugs, so concurrency
        // programs get at least one GA010 warning.
        if bug.name == "pbzip2-1" {
            assert!(
                diags.iter().any(|d| d.code == "GA010"),
                "pbzip2-1 must trip the race lint: {diags:?}"
            );
        }
    }
}

/// One textual malformation per error class the verifier must reject.
#[test]
fn verifier_rejects_each_malformation_class() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "missing terminator",
            "GA001",
            r#"
fn main() {
entry:
  v = const 1
}
"#,
        ),
        (
            "undominated use",
            "GA003",
            r#"
fn main() {
entry:
  c = const 1
  condbr c, a, b
a:
  x = const 2
  br join
b:
  br join
join:
  y = add x, 1
  ret
}
"#,
        ),
    ];
    for (what, code, text) in cases {
        let v = verify_source(what, text);
        assert!(!v.is_clean(), "{what}: accepted a malformed program");
        assert!(
            v.diagnostics.iter().any(|d| d.code == *code),
            "{what}: expected {code}, got {:?}",
            v.diagnostics
        );
    }
}

/// Arity mismatches cannot be *written* (`Program::validate` rejects them
/// at parse), so this class is seeded on the built program — the scenario
/// the verifier guards against is IR corrupted after construction.
#[test]
fn verifier_rejects_call_arity_mismatch() {
    use gist_ir::parser::parse_program;
    use gist_ir::Op;
    let mut p = parse_program(
        "arity",
        r#"
fn callee(p1, p2) {
entry:
  ret
}
fn main() {
entry:
  call callee(1, 2)
  ret
}
"#,
    )
    .unwrap();
    let main = p.function_by_name("main").unwrap().id;
    for b in &mut p.functions[main.index()].blocks {
        for i in &mut b.instrs {
            if let Op::Call { args, .. } = &mut i.op {
                args.pop();
            }
        }
    }
    let diags = verify(&p);
    assert!(
        diags.iter().any(|d| d.code == "GA004" && d.is_error()),
        "{diags:?}"
    );
}

/// Bad branch targets cannot be written in the textual format (the parser
/// resolves labels), so this class is seeded on the built program.
#[test]
fn verifier_rejects_bad_branch_target() {
    use gist_ir::{BlockId, Terminator};
    let mut bug = gist_bugbase::bug_by_name("curl-965").unwrap();
    let mut corrupted = false;
    'outer: for f in &mut bug.program.functions {
        for b in &mut f.blocks {
            if let Terminator::Br { target, .. } = &mut b.term {
                *target = BlockId(999);
                corrupted = true;
                break 'outer;
            }
        }
    }
    assert!(corrupted, "curl-965 has no unconditional branch to corrupt");
    let diags = verify(&bug.program);
    assert!(
        diags.iter().any(|d| d.code == "GA002" && d.is_error()),
        "{diags:?}"
    );
}

#[test]
fn clean_source_round_trips_through_the_verifier() {
    let v = verify_source(
        "clean",
        r#"
global g = 0
fn main() {
entry:
  v = load $g
  store $g, v
  ret
}
"#,
    );
    assert!(v.is_clean(), "{:?}", v.diagnostics);
    assert!(v.program.is_some());
}
