//! Differential test: metrics counters are batch-size independent.
//!
//! The gist-obs determinism contract says counters observe only *logical*
//! events, so running the same work through a sequential fleet (batch=1)
//! and a parallel one (batch=8) must produce byte-identical counter
//! snapshots — any divergence means some counter leaked execution shape.
//!
//! One `#[test]` in its own integration binary: the comparison reads the
//! process-global metrics registry, which other tests in the same process
//! would pollute.

use gist_bugbase::all_bugs;
use gist_coop::{FleetConfig, SimulatedFleet};
use gist_core::Fleet;
use gist_slicing::StaticSlicer;
use gist_tracking::{InstrumentationPatch, Planner};

/// Runs per bug per arm; a multiple of the batch size so batch=8 executes
/// exactly the same runs as batch=1 (no over-prefetch at the tail).
const RUNS: usize = 16;
const BATCH: usize = 8;

fn planned_patch(bug: &gist_bugbase::BugSpec) -> InstrumentationPatch {
    let (_, report) = bug.find_failure(2_000).expect("bug manifests");
    let slicer = StaticSlicer::new(&bug.program);
    let slice = slicer.compute(report.failing_stmt);
    let planner = Planner::new(&bug.program, slicer.ticfg());
    planner.plan(slice.prefix(8), 0)
}

/// Drives every bug through `RUNS` fleet runs at the given batch size and
/// returns the rendered counter section of the metrics snapshot.
fn counters_with(
    batches: &[(gist_bugbase::BugSpec, InstrumentationPatch)],
    batch: usize,
) -> String {
    gist_obs::reset();
    for (bug, patch) in batches {
        let mut fleet = SimulatedFleet::for_bug(
            bug,
            FleetConfig {
                endpoints: 8,
                num_cores: 4,
                batch,
            },
        );
        for _ in 0..RUNS {
            let _ = Fleet::next_run(&mut fleet, patch);
        }
    }
    let snap = gist_obs::snapshot();
    format!("{:?}", snap.counters)
}

#[test]
fn counter_snapshots_agree_across_batch_sizes() {
    if cfg!(feature = "metrics-off") {
        // Nothing to compare: every counter is compiled out.
        return;
    }
    // Plan patches up front so their (counter-producing) failure searches
    // happen outside the measured window, identically for both arms.
    let work: Vec<_> = all_bugs()
        .into_iter()
        .map(|bug| {
            let patch = planned_patch(&bug);
            (bug, patch)
        })
        .collect();
    let sequential = counters_with(&work, 1);
    let batched = counters_with(&work, BATCH);
    assert!(
        !sequential.contains("fleet.runs_dispatched\": 0"),
        "sanity: runs were dispatched and counted"
    );
    assert_eq!(
        sequential, batched,
        "counters must observe logical events only; a counter that differs \
         across batch sizes is recording execution shape (use a histogram)"
    );
}
