//! Differential test: metrics counters are batch-size independent.
//!
//! The gist-obs determinism contract says counters observe only *logical*
//! events, so running the same work through a sequential fleet (batch=1)
//! and a parallel one (batch=8, real pool worker threads forced) must
//! produce byte-identical counter snapshots — any divergence means some
//! counter leaked execution shape. The workload covers every bugbase bug
//! under its shipped patch *and* a pinned-seed synthetic sample, so the
//! pooled path (work stealing, decode-cache shards, deferred metric
//! flushes) is exercised against both program families.
//!
//! One `#[test]` in its own integration binary: the comparison reads the
//! process-global metrics registry, which other tests in the same process
//! would pollute.

use gist_bugbase::all_bugs;
use gist_bugbase::synth::{generate, synth_config, SynthBug};
use gist_coop::{FleetConfig, SimulatedFleet};
use gist_core::Fleet;
use gist_slicing::StaticSlicer;
use gist_tracking::{InstrumentationPatch, Planner};
use gist_vm::VmConfig;

/// Runs per bug per arm; a multiple of the batch size so batch=8 executes
/// exactly the same runs as batch=1 (no over-prefetch at the tail).
const RUNS: usize = 16;
const BATCH: usize = 8;
/// Forced pool worker threads for the batched arm: real cross-thread
/// stealing even on one-core machines.
const WORKERS: usize = 3;
/// Pinned generation seeds for the synthetic sample (seeds whose bugs
/// manifest are kept; generation is fully deterministic, so both arms see
/// the identical sample).
const SYNTH_SEEDS: [u64; 6] = [0, 1, 2, 3, 4, 5];
/// Synthetic bugs retained from the pinned seeds.
const SYNTH_SAMPLE: usize = 3;

fn planned_patch(
    program: &gist_ir::Program,
    failing_stmt: gist_ir::InstrId,
) -> InstrumentationPatch {
    let slicer = StaticSlicer::new(program);
    let slice = slicer.compute(failing_stmt);
    let planner = Planner::new(program, slicer.ticfg());
    planner.plan(slice.prefix(8), 0)
}

/// One differential workload: a program, its seeded workload constructor,
/// and the patch the server would ship.
struct Work {
    program: gist_ir::Program,
    make_config: fn(u64) -> VmConfig,
    patch: InstrumentationPatch,
}

fn workload() -> Vec<Work> {
    let mut work = Vec::new();
    for bug in all_bugs() {
        let (_, report) = bug.find_failure(2_000).expect("bug manifests");
        let patch = planned_patch(&bug.program, report.failing_stmt);
        work.push(Work {
            program: bug.program.clone(),
            make_config: bug.make_config,
            patch,
        });
    }
    let synths: Vec<SynthBug> = SYNTH_SEEDS
        .iter()
        .map(|&s| generate(s))
        .filter(|b| b.find_failure(2_000).is_some())
        .take(SYNTH_SAMPLE)
        .collect();
    assert!(
        !synths.is_empty(),
        "at least one pinned synthetic seed must manifest"
    );
    for bug in &synths {
        let (_, report) = bug.find_failure(2_000).expect("filtered to manifesting");
        let patch = planned_patch(&bug.program, report.failing_stmt);
        work.push(Work {
            program: bug.program.clone(),
            make_config: synth_config,
            patch,
        });
    }
    work
}

/// Drives every workload through `RUNS` fleet runs at the given batch size
/// and returns the rendered counter section of the metrics snapshot.
fn counters_with(work: &[Work], batch: usize, workers: Option<usize>) -> String {
    gist_obs::reset();
    for w in work {
        let mut fleet = SimulatedFleet::new(
            &w.program,
            w.make_config,
            FleetConfig {
                endpoints: 8,
                num_cores: 4,
                batch,
                workers,
            },
        );
        for _ in 0..RUNS {
            let _ = Fleet::next_run(&mut fleet, &w.patch);
        }
    }
    let snap = gist_obs::snapshot();
    format!("{:?}", snap.counters)
}

#[test]
fn counter_snapshots_agree_across_batch_sizes() {
    if cfg!(feature = "metrics-off") {
        // Nothing to compare: every counter is compiled out.
        return;
    }
    // Plan patches up front so their (counter-producing) failure searches
    // happen outside the measured window, identically for both arms.
    let work = workload();
    assert!(
        work.len() > gist_bugbase::all_bugs().len(),
        "synthetic sample extends the bugbase workload"
    );
    let sequential = counters_with(&work, 1, None);
    let batched = counters_with(&work, BATCH, Some(WORKERS));
    assert!(
        !sequential.contains("fleet.runs_dispatched\": 0"),
        "sanity: runs were dispatched and counted"
    );
    assert_eq!(
        sequential, batched,
        "counters must observe logical events only; a counter that differs \
         across batch sizes is recording execution shape (use a histogram)"
    );
}
