//! Golden snapshot tests for rendered failure sketches.
//!
//! Every bugbase bug's final sketch (the paper's Figs. 1, 7, 8 artifact) is
//! pinned byte-for-byte under `tests/golden/<bug>.sketch`. A rendering or
//! pipeline change that alters any sketch fails here with a line diff.
//!
//! To accept intentional changes, regenerate the snapshots:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p gist-bench --test golden_sketches
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use gist_bench::experiments::sketch_for;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// A readable line diff: every differing line as `-expected` / `+actual`.
fn line_diff(expected: &str, actual: &str) -> String {
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    let mut out = String::new();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied();
        let a = act.get(i).copied();
        if e != a {
            if let Some(e) = e {
                let _ = writeln!(out, "  line {:>3} - {e}", i + 1);
            }
            if let Some(a) = a {
                let _ = writeln!(out, "  line {:>3} + {a}", i + 1);
            }
        }
    }
    out
}

fn check_bug(name: &str, failures: &mut Vec<String>) {
    let rendered = sketch_for(name).unwrap_or_else(|| panic!("unknown bug {name}"));
    let path = golden_dir().join(format!("{name}.sketch"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, &rendered).expect("write golden file");
        return;
    }
    let golden = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!(
                "{name}: no golden snapshot at {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            ));
            return;
        }
    };
    if golden != rendered {
        failures.push(format!(
            "{name}: sketch differs from {} (UPDATE_GOLDEN=1 to accept):\n{}",
            path.display(),
            line_diff(&golden, &rendered)
        ));
    }
}

#[test]
fn sketches_match_golden_snapshots() {
    let mut failures = Vec::new();
    for bug in gist_bugbase::all_bugs() {
        check_bug(bug.name, &mut failures);
    }
    assert!(
        failures.is_empty(),
        "{} sketch(es) changed:\n\n{}",
        failures.len(),
        failures.join("\n")
    );
}
